#include "core/framework.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <tuple>

#include "core/cell_store.hpp"
#include "geom/batch_shard.hpp"
#include "io/file.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "recovery/recovery.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace mvio::core {

void RefineTask::adoptBatches(geom::GeometryBatch&& /*r*/, geom::GeometryBatch&& /*s*/) {
  // Default: drop the batches. Tasks that fully reduce inside
  // refineCellBatch (join counts, coverage sums) need nothing more; tasks
  // whose product outlives the pipeline (DistributedIndex) override this
  // and take the arenas wholesale.
}

void RefineTask::mergeWorker(RefineTask& /*worker*/) {
  // Partner of the nullptr makeWorker default: a task that opts out of
  // parallel refine never has workers to merge.
}

namespace {

std::uint64_t allreduceMaxU64(mpi::Comm& comm, std::uint64_t v) {
  std::uint64_t out = 0;
  comm.allreduce(&v, &out, 1, mpi::Datatype::uint64(), mpi::Op::max());
  return out;
}

/// Rank-local spill plumbing shared by the streaming stages: encodes
/// batches to BatchShards on the rank's SpillStore and charges the
/// modelled scratch-I/O time (flat node-local rate, or the Volume's
/// storage model when the scratch lives on the PFS) to the rank clock /
/// spill phase.
struct Spiller {
  mpi::Comm* comm;
  pfs::SpillStore* store;
  pfs::SpillPricer pricer;
  PhaseBreakdown* phases;
  /// Round-overlap mode: when set, charge() banks the modelled seconds
  /// here instead of advancing the clock — the round loop replays them
  /// through the store-flush pipeline stage so round N−1's owned-store
  /// flush hides under round N's exchange (DESIGN.md §10). The framework
  /// toggles this only around CellStore::add during data rounds; the
  /// BatchStager holds a defer-less copy, so staging spills always charge
  /// synchronously.
  double* defer = nullptr;

  void charge(std::uint64_t bytes, bool isWrite) const {
    const double t = pricer.seconds(bytes, isWrite, comm->clock().now());
    obs::addCount(isWrite ? "spill.write_bytes" : "spill.read_bytes", bytes);
    if (defer != nullptr) {
      *defer += t;  // replayed as a flush-lane span by the round loop
      return;
    }
    const double t0 = comm->clock().now();
    comm->clock().advanceBy(t);
    obs::traceSpanAt("spill", t0, comm->clock().now());
    phases->spill += t;
  }

  void spill(const std::string& name, const geom::GeometryBatch& b) const {
    std::string bytes;
    bytes.reserve(geom::shardEncodedSize(b, 0, b.size()));
    geom::encodeShard(b, bytes);
    charge(bytes.size(), /*isWrite=*/true);
    store->put(name, std::move(bytes));
  }

  /// Reload a shard, *appending* its records to `out`, and drop the blob.
  void reload(const std::string& name, geom::GeometryBatch& out) const {
    const std::string bytes = store->fetch(name);
    charge(bytes.size(), /*isWrite=*/false);
    geom::decodeShard(bytes, out);
    store->remove(name);
  }
};

/// FIFO of parsed-but-not-yet-exchanged chunk batches with a resident-byte
/// budget: when the queue's in-memory bytes exceed the budget, the oldest
/// resident batches are written out as shards (oldest first — they are
/// also the first to be reloaded, so the resident tail stays hot).
class BatchStager {
 public:
  BatchStager(const Spiller& spiller, std::string base, std::uint64_t budget)
      : spiller_(spiller), base_(std::move(base)), budget_(budget) {}

  void push(geom::GeometryBatch&& b) {
    Slot slot;
    slot.bytes = b.memoryBytes();
    slot.batch = std::move(b);
    resident_ += slot.bytes;
    slots_.push_back(std::move(slot));
    enforceBudget();
  }

  /// Pop the oldest chunk (reloading it if spilled). Returns false when
  /// the queue is empty — callers then run an empty round.
  bool pop(geom::GeometryBatch& out) {
    if (slots_.empty()) return false;
    Slot& front = slots_.front();
    if (front.spilled) {
      out = geom::GeometryBatch();
      spiller_.reload(front.shard, out);
    } else {
      resident_ -= front.bytes;
      out = std::move(front.batch);
    }
    slots_.pop_front();
    if (spillCursor_ > 0) --spillCursor_;
    return true;
  }

  [[nodiscard]] std::size_t pending() const { return slots_.size(); }

  /// Drop every pending chunk without reloading it — the post-recovery
  /// path re-derives the remaining rounds from the durable chunk log, so
  /// the staged copies (and their scratch blobs) are dead weight.
  void discard() {
    for (const Slot& slot : slots_) {
      if (slot.spilled) spiller_.store->remove(slot.shard);
    }
    slots_.clear();
    resident_ = 0;
    spillCursor_ = 0;
  }

 private:
  struct Slot {
    geom::GeometryBatch batch;
    std::string shard;
    std::uint64_t bytes = 0;
    bool spilled = false;
  };

  void enforceBudget() {
    // Invariant: slots_[0, spillCursor_) are spilled, the rest resident —
    // spilling proceeds front-to-back and pop() removes the front, so the
    // cursor avoids rescanning already-spilled slots on every push.
    while (resident_ > budget_ && spillCursor_ < slots_.size()) {
      Slot& slot = slots_[spillCursor_++];
      slot.shard = base_ + "." + std::to_string(seq_++);
      spiller_.spill(slot.shard, slot.batch);
      resident_ -= slot.bytes;
      slot.batch = geom::GeometryBatch();
      slot.spilled = true;
    }
  }

  Spiller spiller_;
  std::string base_;
  std::uint64_t budget_;
  std::deque<Slot> slots_;
  std::uint64_t resident_ = 0;
  std::size_t seq_ = 0;
  std::size_t spillCursor_ = 0;  ///< first not-yet-spilled slot
};

/// One chunk's deferred prep charge under round overlap (DESIGN.md §10):
/// the rank clock when its read completed and the parse critical path the
/// round loop's pipeline recurrence still has to account for.
struct ChunkPrep {
  double readDoneAt = 0;
  double prepSeconds = 0;
};

/// Pilot pass for adaptive partitioning (DESIGN.md §13): a deterministic
/// stride sample of every parsed record's envelope, shared across chunks
/// and layers so the rate holds over the whole ingest.
struct PilotSampler {
  std::uint64_t stride = 100;
  std::uint32_t cap = 1u << 16;
  std::uint64_t seen = 0;
  std::vector<geom::Envelope> envelopes;

  explicit PilotSampler(const PartitionerConfig& cfg) : cap(cfg.maxSamplesPerRank) {
    const double rate = std::clamp(cfg.sampleRate, 1e-6, 1.0);
    stride = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(1.0 / rate));
  }

  void observe(const geom::GeometryBatch& chunk) {
    for (std::size_t i = 0; i < chunk.size(); ++i, ++seen) {
      if (seen % stride != 0 || envelopes.size() >= cap) continue;
      envelopes.push_back(chunk.envelope(i));
    }
  }
};

/// Phases 1+2 for one layer, chunk by chunk: partitioned read then parse
/// straight into a per-chunk batch (no per-record Geometry objects),
/// staged for the exchange rounds. Accumulates the layer's local MBR for
/// grid construction along the way. With checkpointing enabled every
/// parsed chunk is also written to the durable chunk log — the replay
/// source recovery re-derives lost rounds from.
///
/// With a worker pool (threadsPerRank > 1) the chunk text is parsed in
/// parallel record-boundary slices and the clock is charged the critical
/// path — max worker CPU plus the serial splice — instead of the summed
/// CPU. With `overlapPrep` set (round overlap) the parse charge is not
/// applied here at all: it is recorded per chunk and replayed by the
/// round loop's pipeline recurrence, where it can hide under exchanges.
void ingestLayer(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& ds,
                 const FrameworkConfig& cfg, BatchStager& stage, geom::Envelope& localBounds,
                 ParseStats& parseStats, PartitionResult& ioStats, PhaseBreakdown& phases,
                 recovery::CheckpointCoordinator& ckpt, int layer, util::ThreadPool* pool,
                 std::deque<ChunkPrep>* overlapPrep, PilotSampler* pilot) {
  // Resolve the layer's ingest format: an explicit FormatReader wins; a
  // bare Parser is wrapped in a TextFormatReader shim (byte-identical to
  // the classic text path).
  const FormatReader* fmt = ds.format;
  std::optional<TextFormatReader> textShim;
  if (fmt == nullptr) {
    MVIO_CHECK(ds.parser != nullptr, "dataset needs a parser or format");
    textShim.emplace(ds.parser);
    fmt = &*textShim;
  } else {
    MVIO_CHECK(ds.parser == nullptr, "dataset has both a parser and a format; set exactly one");
  }
  io::File file = io::File::open(comm, volume, ds.path, cfg.ioHints);
  PartitionReader reader(comm, file, ds.partition, cfg.stream.chunkBytes, fmt);

  std::string text;
  while (true) {
    const double t0 = comm.clock().now();
    const bool more = reader.next(text);
    phases.read += comm.clock().now() - t0;
    if (!more) break;
    const double readDoneAt = comm.clock().now();
    obs::traceSpanAt("read", t0, readDoneAt);

    geom::GeometryBatch chunk;
    ParseTiming pt;
    ParseStats ps;
    if (pool != nullptr && pool->threads() > 1) {
      ps = fmt->parseChunk(text, chunk, pool, &pt);
      phases.workerCpu += pt.cpuSum;
      phases.workerCritical += pt.critical;
    } else {
      ps = fmt->parseChunk(text, chunk, nullptr, &pt);
    }
    parseStats.records += ps.records;
    parseStats.badRecords += ps.badRecords;
    parseStats.bytes += ps.bytes;
    if (overlapPrep != nullptr) {
      overlapPrep->push_back({readDoneAt, pt.critical});
    } else {
      const double p0 = comm.clock().now();
      comm.clock().advanceBy(pt.critical);
      obs::traceSpanAt("parse", p0, comm.clock().now());
      phases.parse += pt.critical;
    }
    localBounds.expandToInclude(chunk.bounds());
    if (pilot != nullptr) pilot->observe(chunk);
    ckpt.logChunk(layer, chunk);
    stage.push(std::move(chunk));
  }
  ioStats = reader.counters();
}

/// Ascending union of two sorted cell-id lists.
std::vector<int> mergeCellLists(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

/// Refine dispatch through the partition map. Uniform maps call straight
/// through (partition cells *are* grid cells). Adaptive maps sub-bucket
/// the partition cell's records by uniform member cell — re-running the
/// same overlappingCells arithmetic projection used, keeping only members
/// of this partition cell — and refine each member separately, so every
/// task sees exactly the uniform cells, spans and duplicate-avoidance
/// geometry the uniform-grid run would have produced.
void refineThroughMap(RefineTask& task, const PartitionMap& map, int cell,
                      const geom::BatchSpan& r, const geom::BatchSpan& s) {
  if (map.isUniform()) {
    task.refineCellBatch(map.grid(), cell, r, s);
    return;
  }
  const GridSpec& grid = map.grid();
  // Ascending uniform member id; each layer's sub-list keeps span order.
  std::map<int, std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>> sub;
  std::vector<int> cells;
  const auto bucket = [&](const geom::BatchSpan& span, bool isR) {
    for (std::size_t k = 0; k < span.size(); ++k) {
      cells.clear();
      grid.overlappingCells(span.envelope(k), cells);
      for (const int u : cells) {
        if (map.groupOf(u) != cell) continue;
        auto& lists = sub[u];
        (isR ? lists.first : lists.second)
            .push_back(static_cast<std::uint32_t>(span.recordIndex(k)));
      }
    }
  };
  bucket(r, true);
  bucket(s, false);
  for (const auto& [u, lists] : sub) {
    // An empty sub-list must become a default span: BatchSpan::batch()
    // dereferences, and r/s themselves may be default spans here.
    const geom::BatchSpan subR =
        lists.first.empty()
            ? geom::BatchSpan()
            : geom::BatchSpan(&r.batch(), lists.first.data(), lists.first.size());
    const geom::BatchSpan subS =
        lists.second.empty()
            ? geom::BatchSpan()
            : geom::BatchSpan(&s.batch(), lists.second.data(), lists.second.size());
    task.refineCellBatch(grid, u, subR, subS);
  }
}

}  // namespace

geom::GeometryBatch projectToCells(const PartitionMap& map, const CellLocator* locator,
                                   geom::GeometryBatch&& geoms) {
  const std::size_t n = geoms.size();
  std::vector<int> cells;
  for (std::size_t i = 0; i < n; ++i) {
    cells.clear();
    if (locator != nullptr) {
      // The locator resolves uniform cells; adaptive maps translate its
      // (already sorted) result into partition ids in place.
      locator->overlappingCells(geoms.envelope(i), cells);
      map.translateCells(cells, 0);
    } else {
      map.overlappingCells(geoms.envelope(i), cells);
    }
    if (cells.empty()) {
      geoms.setCell(i, geom::GeometryBatch::kNoCell);
      continue;
    }
    geoms.setCell(i, cells[0]);
    for (std::size_t k = 1; k < cells.size(); ++k) geoms.appendRecordFrom(geoms, i, cells[k]);
  }
  return std::move(geoms);
}

FrameworkStats runFilterRefine(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                               const DatasetHandle* s, const FrameworkConfig& cfg, RefineTask& task) {
  MVIO_CHECK(cfg.gridCells >= 1, "need at least one grid cell");
  FrameworkStats stats;
  const StreamConfig& sc = cfg.stream;
  const std::uint64_t budget = sc.memoryBudget == 0 ? UINT64_MAX : sc.memoryBudget;
  const int p = comm.size();

  // Checkpoint/recovery setup (DESIGN.md §9). Checkpoint blob names are
  // keyed by world rank, so the subsystem requires the launch (world)
  // communicator when enabled.
  recovery::CheckpointConfig ckptCfg;
  ckptCfg.everyRounds = sc.checkpointEveryRounds;
  ckptCfg.dir = sc.checkpointDir;
  ckptCfg.tearEpochSeal = sc.tearEpochSeal;
  ckptCfg.compactEveryEpochs = sc.compaction.everyEpochs;
  ckptCfg.compactKeepEpochs = sc.compaction.keepEpochs;
  recovery::CheckpointCoordinator ckpt(comm, volume, ckptCfg, &stats.phases);
  if (ckpt.enabled()) {
    MVIO_CHECK(comm.rank() == comm.worldRank(),
               "checkpointing requires the world communicator (blob names are world-rank keyed)");
  }

  // Unified fault schedule: explicit cascading events plus the legacy
  // failRanks/killPoint single-wave form (which maps to pass-0 events).
  std::vector<sim::FailureEvent> schedule = cfg.failSchedule;
  MVIO_CHECK(cfg.killPoint.afterRound == 0 || !cfg.failRanks.empty(),
             "killPoint set without failRanks — the kill would silently never fire");
  MVIO_CHECK(cfg.failRanks.empty() || cfg.killPoint.afterRound != 0,
             "failRanks set without a kill point");
  for (const int dead : cfg.failRanks) {
    schedule.push_back({dead, cfg.killPoint.afterRound, 0});
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const sim::FailureEvent& a, const sim::FailureEvent& b) {
              return std::tie(a.afterRound, a.duringRecoveryPass, a.rank) <
                     std::tie(b.afterRound, b.duringRecoveryPass, b.rank);
            });
  const bool injecting = !schedule.empty();
  if (injecting) {
    MVIO_CHECK(ckpt.enabled(),
               "failure injection requires StreamConfig::checkpointEveryRounds > 0");
    MVIO_CHECK(static_cast<int>(schedule.size()) < p,
               "failure injection must leave at least one survivor");
    std::vector<int> dying;
    for (const sim::FailureEvent& ev : schedule) {
      MVIO_CHECK(ev.rank >= 0 && ev.rank < p, "fault schedule names a rank outside the communicator");
      MVIO_CHECK(ev.afterRound != 0, "fault schedule event without a kill round");
      MVIO_CHECK(ev.duringRecoveryPass >= 0, "fault schedule event with a negative recovery pass");
      dying.push_back(ev.rank);
    }
    std::sort(dying.begin(), dying.end());
    MVIO_CHECK(std::adjacent_find(dying.begin(), dying.end()) == dying.end(),
               "fault schedule kills the same rank twice");
    MVIO_CHECK(schedule.front().duringRecoveryPass == 0,
               "the first failure wave must strike at a round boundary, not during recovery");
  }
  // Group the schedule into waves: events sharing (afterRound, pass) die
  // together; each later group is detected by the survivors' next
  // detection allgather and triggers another recovery pass.
  std::vector<std::vector<int>> failWaves;
  for (std::size_t i = 0; i < schedule.size();) {
    std::size_t j = i;
    failWaves.emplace_back();
    while (j < schedule.size() && schedule[j].afterRound == schedule[i].afterRound &&
           schedule[j].duringRecoveryPass == schedule[i].duringRecoveryPass) {
      failWaves.back().push_back(schedule[j].rank);
      ++j;
    }
    i = j;
  }
  const std::uint64_t firstKillRound = injecting ? schedule.front().afterRound : 0;

  // Per-rank worker pool (DESIGN.md §10). The rank thread keeps exclusive
  // ownership of Comm and the sim clock; workers only ever run
  // parse/refine bodies handed to them, and every pool region is charged
  // to the clock afterwards by its critical path (max worker CPU).
  MVIO_CHECK(cfg.threadsPerRank >= 1, "threadsPerRank must be at least 1");
  std::optional<util::ThreadPool> pool;
  if (cfg.threadsPerRank > 1) pool.emplace(cfg.threadsPerRank);

  // Refine worker clones — one per pool thread. A task whose makeWorker
  // returns nullptr opts out of parallel refine and keeps the serial loop.
  std::vector<std::unique_ptr<RefineTask>> refineWorkers;
  if (pool) {
    for (int t = 0; t < cfg.threadsPerRank; ++t) {
      std::unique_ptr<RefineTask> w = task.makeWorker();
      if (w == nullptr) {
        refineWorkers.clear();
        break;
      }
      refineWorkers.push_back(std::move(w));
    }
  }
  const bool parallelRefine = !refineWorkers.empty();

  // Round overlap is defined on the chunked round schedule; a one-shot
  // run (chunkBytes == 0) has a single round and nothing to pipeline.
  const bool overlap = sc.overlapRounds && sc.chunkBytes > 0;
  std::deque<ChunkPrep> prepR, prepS;

  // Rank-local scratch for spilled shards; blobs are dropped on exit.
  pfs::SpillStore spill(volume, sc.spillDir + "/rank" + std::to_string(comm.worldRank()));
  const pfs::SpillPricer pricer = sc.spillOnPfs
                                      ? pfs::SpillPricer::onVolume(volume, comm.nodeId())
                                      : pfs::SpillPricer::flatRate(sc.spillBytesPerSecond);
  Spiller spiller{&comm, &spill, pricer, &stats.phases};

  // 1+2: read and parse both layers, chunk by chunk, staging the parsed
  // batches (under the memory budget) for the exchange rounds.
  BatchStager stageR(spiller, "pend_r", budget);
  BatchStager stageS(spiller, "pend_s", budget);
  geom::Envelope localBounds;
  // Adaptive partitioning piggybacks a pilot sample on the ingest scan —
  // no extra read pass (DESIGN.md §13).
  std::optional<PilotSampler> pilot;
  if (cfg.partition.scheme != PartitionScheme::kUniform) pilot.emplace(cfg.partition);
  ingestLayer(comm, volume, r, cfg, stageR, localBounds, stats.parseR, stats.ioR, stats.phases,
              ckpt, 0, pool ? &*pool : nullptr, overlap ? &prepR : nullptr,
              pilot ? &*pilot : nullptr);
  if (s != nullptr) {
    ingestLayer(comm, volume, *s, cfg, stageS, localBounds, stats.parseS, stats.ioS, stats.phases,
                ckpt, 1, pool ? &*pool : nullptr, overlap ? &prepS : nullptr,
                pilot ? &*pilot : nullptr);
  }
  ckpt.sealIngest();

  // 3: global grid via MPI_UNION of local MBRs (both layers). Chunked
  // parsing folded every chunk's bounds into localBounds, so the union is
  // identical to a whole-batch scan.
  stats.grid = buildGlobalGrid(comm, localBounds, cfg.gridCells);
  const GridSpec& grid = stats.grid;

  // 3b: partition map (DESIGN.md §13). Pilot samples are shared — counts
  // allgathered, envelopes gathered to rank 0 in rank order and broadcast
  // back — so every rank sees the identical sample sequence and builds
  // the identical map and plan with no further agreement round.
  stats.partition = PartitionMap::uniform(grid);
  if (pilot) {
    const std::uint64_t mine = pilot->envelopes.size();
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(p), 0);
    comm.allgather(&mine, 1, mpi::Datatype::uint64(), counts.data());
    std::uint64_t totalSamples = 0;
    std::vector<int> recvCounts(static_cast<std::size_t>(p), 0);
    std::vector<int> displs(static_cast<std::size_t>(p), 0);
    for (int rk = 0; rk < p; ++rk) {
      displs[static_cast<std::size_t>(rk)] = static_cast<int>(totalSamples * 4);
      recvCounts[static_cast<std::size_t>(rk)] = static_cast<int>(counts[static_cast<std::size_t>(rk)] * 4);
      totalSamples += counts[static_cast<std::size_t>(rk)];
    }
    std::vector<double> flat(static_cast<std::size_t>(mine) * 4);
    for (std::size_t i = 0; i < pilot->envelopes.size(); ++i) {
      const geom::Envelope& e = pilot->envelopes[i];
      flat[i * 4 + 0] = e.minX();
      flat[i * 4 + 1] = e.minY();
      flat[i * 4 + 2] = e.maxX();
      flat[i * 4 + 3] = e.maxY();
    }
    std::vector<double> all(static_cast<std::size_t>(totalSamples) * 4);
    comm.gatherv(flat.data(), static_cast<int>(flat.size()), mpi::Datatype::float64(), all.data(),
                 recvCounts.data(), displs.data(), 0);
    comm.bcast(all.data(), static_cast<int>(all.size()), mpi::Datatype::float64(), 0);
    std::vector<geom::Envelope> samples;
    samples.reserve(static_cast<std::size_t>(totalSamples));
    for (std::size_t i = 0; i < static_cast<std::size_t>(totalSamples); ++i) {
      const geom::Envelope e(all[i * 4 + 0], all[i * 4 + 1], all[i * 4 + 2], all[i * 4 + 3]);
      if (!e.isNull()) samples.push_back(e);
    }
    stats.partition = buildPartitionMap(cfg.partition, grid, samples, p);
    // Plan with the measured run size: parsed records scale the sampled
    // loads; parsed bytes per record price the predicted migration.
    std::uint64_t localSize[2] = {stats.parseR.records + stats.parseS.records,
                                  stats.parseR.bytes + stats.parseS.bytes};
    std::uint64_t runSize[2] = {0, 0};
    comm.allreduce(localSize, runSize, 2, mpi::Datatype::uint64(), mpi::Op::sum());
    const double bytesPerRecord =
        runSize[0] == 0 ? 256.0 : static_cast<double>(runSize[1]) / static_cast<double>(runSize[0]);
    stats.plan = planPartition(stats.partition, samples, p, runSize[0], bytesPerRecord);
  }
  const PartitionMap& map = stats.partition;
  if (ckpt.enabled()) ckpt.setPartitionMap(encodePartitionMap(map));

  std::optional<CellLocator> locator;
  if (cfg.rtreeCellLocator) locator.emplace(grid);
  auto owner = [p](int cell) { return roundRobinOwner(cell, p); };
  std::vector<int> rrOwner;
  if (ckpt.enabled()) {
    rrOwner.resize(static_cast<std::size_t>(map.cellCount()));
    for (int c = 0; c < map.cellCount(); ++c) rrOwner[static_cast<std::size_t>(c)] = owner(c);
  }

  // 4+5: project + exchange rounds per layer (communication phase).
  // exchangeByCell charges serialization/deserialization CPU internally;
  // the clock deltas accumulated per round therefore cover buffer
  // management + transfer, the paper's definition of communication time.
  // Received records accumulate into per-layer CellStores: resident when
  // the budget is unbounded, cell-sorted spill segments otherwise.
  const SpillChargeFn spillCharge = [&spiller](std::uint64_t bytes, bool isWrite) {
    spiller.charge(bytes, isWrite);
  };
  // Two-layer runs split the refine budget between the layer stores so
  // the reported peak (their sum) stays within the configured bound. A
  // parallel streaming refine additionally reserves a group share out of
  // the same budget for the per-dispatch staged cell batches, keeping the
  // bound (plus the usual one-cell slack) intact.
  std::uint64_t refineGroupBytes = 0;
  std::uint64_t storePool = sc.memoryBudget;
  if (sc.memoryBudget > 0 && parallelRefine) {
    refineGroupBytes = std::max<std::uint64_t>(sc.memoryBudget / 4, 1);
    storePool = std::max<std::uint64_t>(sc.memoryBudget - refineGroupBytes, 1);
  }
  const std::uint64_t storeBudget =
      (s != nullptr && storePool > 0) ? std::max<std::uint64_t>(storePool / 2, 1) : storePool;
  CellStore ownedR(&spill, "own_r", storeBudget, 0, spillCharge);
  CellStore ownedS(&spill, "own_s", storeBudget, 0, spillCharge);

  // The data-round schedule is fixed up front (the counts derive from the
  // staged chunks, allreduced): the kill point and the checkpoint epochs
  // are defined on the global data-round index — layer R's rounds first,
  // then layer S's — and recovery replays against the same schedule.
  const std::uint64_t roundsR = allreduceMaxU64(comm, stageR.pending());
  const std::uint64_t roundsS = s != nullptr ? allreduceMaxU64(comm, stageS.pending()) : 0;
  // The agreed schedule lets compaction map GC'd rounds to chunk blobs.
  ckpt.setRoundSchedule(roundsR, roundsS);
  if (injecting) {
    MVIO_CHECK(schedule.back().afterRound <= roundsR + roundsS,
               "kill point lies beyond the data-round schedule");
  }

  mpi::Comm active = comm;  ///< shrinks to the survivors after a recovery
  std::vector<int> activeWorld;  ///< active-local rank -> world rank (post-recovery)
  bool recovered = false;
  std::uint64_t globalRound = 0;

  // Reused across every exchange round so the p-sized header/count
  // vectors and the payload buffers keep their capacity between rounds.
  ExchangeScratch xscratch;

  // Round-overlap pipeline state (DESIGN.md §10), shared across layers.
  // prepDoneAt models the prep stage (deferred parse + projection,
  // double-buffered two rounds deep against the exchange), storeDoneAt
  // the store-flush stage replaying deferred owned-store spill charges,
  // commDonePrev* the last two rounds' exchange completion times.
  double prepDoneAt = 0;
  double commDonePrev1 = 0;
  double commDonePrev2 = 0;
  double storeDoneAt = 0;
  double spillBanked = 0;

  // One layer's rounds. Returns false when the schedule was cut short —
  // this rank died, or a recovery re-derived every remaining round from
  // the durable log (no further exchanges happen either way).
  const auto runLayerRounds = [&](int layer, BatchStager& stage, CellStore& owned,
                                  std::uint64_t rounds) -> bool {
    const bool streaming = sc.chunkBytes > 0;
    for (std::uint64_t round = 0; round < rounds; ++round) {
      obs::traceBegin("round");
      geom::GeometryBatch chunk;
      const bool hadChunk = stage.pop(chunk);  // false → empty round for this rank
      double projectSeconds = 0;
      {
        sim::ThreadCpuTimer timer;
        chunk = projectToCells(map, locator ? &*locator : nullptr, std::move(chunk));
        projectSeconds = timer.elapsed();
      }
      if (overlap) {
        // Pipeline recurrence: the chunk's prep (deferred parse +
        // projection) starts once the prep stage is free, its read has
        // landed, and the depth-2 buffer has room — i.e. the exchange two
        // rounds back has completed. Only the part of the prep that
        // outlasts "now" stalls the rank; the rest already hid under
        // earlier exchanges and is credited to `overlapped`.
        double parseSeconds = 0;
        double readDoneAt = 0;
        std::deque<ChunkPrep>& prep = layer == 0 ? prepR : prepS;
        if (hadChunk && !prep.empty()) {
          parseSeconds = prep.front().prepSeconds;
          readDoneAt = prep.front().readDoneAt;
          prep.pop_front();
        }
        const double now0 = comm.clock().now();
        const double prepStart = std::max({prepDoneAt, readDoneAt, commDonePrev2});
        prepDoneAt = prepStart + parseSeconds + projectSeconds;
        const double exposed = std::max(0.0, prepDoneAt - now0);
        comm.clock().advanceTo(prepDoneAt);
        const double prepTotal = parseSeconds + projectSeconds;
        // The prep stage runs concurrently with earlier exchanges — it
        // gets its own lane so the overlap is visible in the trace, split
        // into the phase names the breakdown charges it to.
        if (obs::ObsContext& octx = obs::obsContext(); octx.tracer != nullptr) {
          const int lane = octx.tracer->prepLane();
          if (parseSeconds > 0) {
            obs::traceSpanAtLane(lane, "parse", prepStart, prepStart + parseSeconds);
          }
          if (projectSeconds > 0) {
            obs::traceSpanAtLane(lane, "partition", prepStart + parseSeconds, prepDoneAt);
          }
        }
        if (prepTotal > 0) {
          stats.phases.parse += exposed * (parseSeconds / prepTotal);
          stats.phases.partition += exposed * (projectSeconds / prepTotal);
          stats.phases.overlapped += prepTotal - exposed;
        }
      } else {
        const double pj0 = comm.clock().now();
        comm.clock().advanceBy(projectSeconds);
        obs::traceSpanAt("partition", pj0, comm.clock().now());
        stats.phases.partition += projectSeconds;
      }
      const bool last = !streaming && round + 1 == rounds;
      const double t0 = comm.clock().now();
      const std::uint64_t wire0 = stats.exchange.bytesReceived;
      geom::GeometryBatch got =
          exchangeByCell(comm, std::move(chunk), owner, cfg.windowPhases, map.cellCount(),
                         &stats.exchange, {}, last, &xscratch);
      stats.phases.comm += comm.clock().now() - t0;
      stats.phases.rounds += 1;
      obs::traceSpanAt("comm", t0, comm.clock().now());
      if (obs::metricsOn()) {
        const std::uint64_t roundBytes = stats.exchange.bytesReceived - wire0;
        obs::addCount("exchange.bytes", roundBytes);
        obs::observe("exchange.round_bytes", static_cast<double>(roundBytes));
      }
      if (overlap) {
        commDonePrev2 = commDonePrev1;
        commDonePrev1 = comm.clock().now();
      }
      ckpt.noteRound(layer, got);
      if (overlap) {
        // Store-flush stage: the owned store's segment flushes for round
        // N−1 run while round N's exchange is on the wire; the deferred
        // charges queue on storeDoneAt and the residue is settled before
        // finalize.
        double banked = 0;
        spiller.defer = &banked;
        owned.add(std::move(got));
        spiller.defer = nullptr;
        const double flushStart = std::max(storeDoneAt, comm.clock().now());
        storeDoneAt = flushStart + banked;
        spillBanked += banked;
        if (obs::ObsContext& octx = obs::obsContext(); octx.tracer != nullptr && banked > 0) {
          obs::traceSpanAtLane(octx.tracer->flushLane(), "spill", flushStart, storeDoneAt);
        }
      } else {
        owned.add(std::move(got));
      }
      globalRound += 1;
      ckpt.maybeCheckpoint(globalRound, rrOwner);

      if (injecting && globalRound == firstKillRound) {
        // Failure detection + cascading recovery. Each iteration is one
        // detection allgather over the current communicator (the
        // simulation's failure detector): newly dead ranks leave with
        // their volatile state, the survivors shrink the communicator
        // and run a recovery pass. Ranks scheduled to die *during* that
        // pass (or at a later round — everything past the first kill is
        // recovery territory) are caught by the next iteration, and the
        // loop only exits on an allgather that reports a stable survivor
        // set. The seal-scan cache makes the repeated recovery-point
        // scans free; seeded LPT re-homing composes across the shrinks.
        recovery::SealScanCache sealCache;
        std::vector<int> cumulativeDead;
        std::vector<int> priorOwner;
        bool alive = true;
        std::size_t wave = 0;
        while (true) {
          if (wave < failWaves.size() &&
              std::find(failWaves[wave].begin(), failWaves[wave].end(), comm.worldRank()) !=
                  failWaves[wave].end()) {
            alive = false;
          }
          const std::int32_t mine = alive ? comm.worldRank() : ~comm.worldRank();
          std::vector<std::int32_t> flags(static_cast<std::size_t>(active.size()), 0);
          active.allgather(&mine, 1, mpi::Datatype::int32(), flags.data());
          std::vector<int> survivors;
          std::vector<int> newlyDead;
          for (const std::int32_t f : flags) {
            (f >= 0 ? survivors : newlyDead).push_back(f >= 0 ? f : ~f);
          }
          if (newlyDead.empty()) break;  // stable survivor set
          MVIO_WARN("recovery", newlyDead.size() << " rank(s) failed at round " << globalRound
                                                 << "; survivors: " << survivors.size());
          mpi::Comm shrunk = active.split(alive ? 1 : 0, active.rank());
          if (!alive) {
            stats.recovery.died = true;
            obs::traceEnd("round");
            return false;
          }
          active = shrunk;
          std::sort(newlyDead.begin(), newlyDead.end());
          cumulativeDead.insert(cumulativeDead.end(), newlyDead.begin(), newlyDead.end());
          std::sort(cumulativeDead.begin(), cumulativeDead.end());

          recovery::RecoveryContext ctx;
          ctx.checkpoint = ckptCfg;
          ctx.worldSize = p;
          ctx.deadRanks = cumulativeDead;
          ctx.newlyDead = newlyDead;
          ctx.survivorWorld = survivors;
          ctx.priorOwner = priorOwner;
          ctx.failRound = firstKillRound;
          // The first pass replays every round past the boundary, so for
          // cascading passes the survivors already hold all rounds.
          ctx.deliveredRound = priorOwner.empty() ? firstKillRound : roundsR + roundsS;
          ctx.roundsPerLayer[0] = roundsR;
          ctx.roundsPerLayer[1] = roundsS;
          ctx.grid = &grid;
          ctx.map = &map;
          ctx.locator = locator ? &*locator : nullptr;
          ctx.shardedReplay = sc.shardedReplay;
          ctx.sealCache = &sealCache;
          obs::traceBegin("recovery");
          recovery::RecoveryOutcome outcome = recovery::recoverFromFailure(
              active, volume, ctx, ownedR, s != nullptr ? &ownedS : nullptr, &stats.phases);
          obs::traceEnd("recovery");
          obs::addCount("recovery.restored_records", outcome.stats.restoredRecords);
          obs::addCount("recovery.replayed_records", outcome.stats.replayedRecords);
          obs::addCount("recovery.passes", 1);
          priorOwner = std::move(outcome.cellOwner);
          stats.recovery.recovered = true;
          stats.recovery.deadRanks = cumulativeDead.size();
          stats.recovery.epochUsed = outcome.stats.epochUsed;
          stats.recovery.restoredRecords += outcome.stats.restoredRecords;
          stats.recovery.replayedRecords += outcome.stats.replayedRecords;
          stats.recovery.recoveryPasses += 1;
          activeWorld = std::move(survivors);
          wave += 1;
        }
        stats.cellOwner = std::move(priorOwner);
        recovered = true;
        obs::traceEnd("round");
        return false;
      }
      obs::traceEnd("round");
    }
    if (streaming) {
      // Termination barrier: an empty round whose header carries
      // kRoundLast on every rank, making "no records this round" and
      // "stream over" distinct on the wire.
      const double t0 = comm.clock().now();
      geom::GeometryBatch got =
          exchangeByCell(comm, geom::GeometryBatch(), owner, cfg.windowPhases, map.cellCount(),
                         &stats.exchange, {}, /*lastRound=*/true, &xscratch);
      stats.phases.comm += comm.clock().now() - t0;
      stats.phases.rounds += 1;
      owned.add(std::move(got));
    }
    return true;
  };

  bool onSchedule = runLayerRounds(0, stageR, ownedR, roundsR);
  if (onSchedule && s != nullptr) onSchedule = runLayerRounds(1, stageS, ownedS, roundsS);

  if (stats.recovery.died) {
    // Fail-stop: the rank's volatile state — staged chunks, owned cell
    // stores, scratch spill blobs — dies with it. Only the durable
    // checkpoint blobs it already wrote survive on the volume. Its task
    // never refines and it joins no further collective.
    spill.clear();
    stats.spill = spill.stats();
    return stats;
  }
  if (recovered) {
    // Every remaining round was re-derived from the chunk log; the
    // staged copies (and the dead ranks' stale deliveries they would
    // duplicate) are discarded.
    stageR.discard();
    stageS.discard();
    stats.activeComm = active;
  }
  if (overlap) {
    // Prep entries never reached by the round loop (a recovery cut the
    // schedule short) were still real parse CPU; account them as hidden.
    for (const ChunkPrep& cp : prepR) stats.phases.overlapped += cp.prepSeconds;
    for (const ChunkPrep& cp : prepS) stats.phases.overlapped += cp.prepSeconds;
    prepR.clear();
    prepS.clear();
    // Settle the store-flush stage: whatever deferred spill time outlasts
    // the final exchange is a real stall before refine; the rest hid.
    const double now = comm.clock().now();
    const double exposed = std::min(spillBanked, std::max(0.0, storeDoneAt - now));
    stats.phases.spill += exposed;
    stats.phases.overlapped += spillBanked - exposed;
    comm.clock().advanceTo(storeDoneAt);
  }

  ownedR.finalize();
  ownedS.finalize();
  stats.localR = ownedR.records();
  stats.localS = ownedS.records();

  // 5b: skew-aware owned-cell rebalancing, on the active (possibly
  // shrunk) communicator. Every rank reduces the global per-cell loads
  // and measures the imbalance; when it clears the adaptive threshold,
  // all repeat the same deterministic LPT assignment and ship leaving
  // cells point-to-point as checksummed shard blobs.
  const int ap = active.size();
  if (cfg.rebalanceCells && ap > 1) {
    const double t0 = active.clock().now();
    obs::traceBegin("migrate");
    const double spillBefore = stats.phases.spill;
    stats.balance.ownedRecordsBefore = ownedR.records() + ownedS.records();
    std::vector<std::uint64_t> loads(static_cast<std::size_t>(map.cellCount()), 0);
    ownedR.accumulateCellLoads(loads);
    ownedS.accumulateCellLoads(loads);
    std::vector<std::uint64_t> global(loads.size(), 0);
    active.allreduce(loads.data(), global.data(), static_cast<int>(loads.size()),
                     mpi::Datatype::uint64(), mpi::Op::sum());

    if (activeWorld.empty()) {
      activeWorld.resize(static_cast<std::size_t>(ap));
      std::iota(activeWorld.begin(), activeWorld.end(), 0);
    }
    std::vector<int> worldToLocal(static_cast<std::size_t>(p), -1);
    for (int local = 0; local < ap; ++local) {
      worldToLocal[static_cast<std::size_t>(activeWorld[static_cast<std::size_t>(local)])] = local;
    }
    // Current ownership in world ranks: the recovery map when one ran,
    // round-robin over the launch size otherwise.
    const auto currentWorldOwner = [&](int cell) {
      return stats.cellOwner.empty() ? roundRobinOwner(cell, p)
                                     : stats.cellOwner[static_cast<std::size_t>(cell)];
    };

    // Adaptive trigger: measure the max/mean per-rank load ratio under
    // the current map and skip the pass — and its wire traffic — when
    // the owned loads are already within the threshold.
    std::vector<std::uint64_t> perRank(static_cast<std::size_t>(ap), 0);
    std::uint64_t total = 0;
    for (int c = 0; c < map.cellCount(); ++c) {
      const int local = worldToLocal[static_cast<std::size_t>(currentWorldOwner(c))];
      MVIO_CHECK(local >= 0, "rebalance: cell owned by a rank outside the active communicator");
      perRank[static_cast<std::size_t>(local)] += global[static_cast<std::size_t>(c)];
      total += global[static_cast<std::size_t>(c)];
    }
    const std::uint64_t maxLoad = *std::max_element(perRank.begin(), perRank.end());
    const double mean = static_cast<double>(total) / static_cast<double>(ap);
    stats.balance.imbalance = total == 0 ? 0.0 : static_cast<double>(maxLoad) / mean;
    obs::setGauge("balance.imbalance_before", stats.balance.imbalance);

    // Max/mean ratio of a candidate local assignment — the "after" gauge
    // for the report (identical arithmetic to the trigger measurement).
    const auto imbalanceOf = [&](const std::vector<int>& owner) {
      std::vector<std::uint64_t> load(static_cast<std::size_t>(ap), 0);
      for (int c = 0; c < map.cellCount(); ++c) {
        load[static_cast<std::size_t>(owner[static_cast<std::size_t>(c)])] +=
            global[static_cast<std::size_t>(c)];
      }
      const std::uint64_t mx = *std::max_element(load.begin(), load.end());
      return total == 0 ? 0.0 : static_cast<double>(mx) / mean;
    };

    // Under an adaptive map the LPT proposal is additionally priced by the
    // cost model: refine seconds the move would save vs wire seconds it
    // costs at the measured shard size, scaled by rebalanceThreshold. The
    // uniform path keeps the classic ratio-only trigger byte-for-byte.
    bool costGated = false;
    std::vector<int> proposal;
    if (stats.balance.imbalance >= cfg.rebalanceThreshold) {
      proposal = lptAssignCells(global, ap);
      if (!map.isUniform()) {
        std::vector<int> curLocal(static_cast<std::size_t>(map.cellCount()), 0);
        for (int c = 0; c < map.cellCount(); ++c) {
          curLocal[static_cast<std::size_t>(c)] =
              worldToLocal[static_cast<std::size_t>(currentWorldOwner(c))];
        }
        // Measured wire size per record, allreduced so every rank prices
        // (and gates) the identical decision.
        std::uint64_t localWire[2] = {stats.exchange.bytesReceived,
                                      stats.exchange.geometriesReceived};
        std::uint64_t wire[2] = {0, 0};
        active.allreduce(localWire, wire, 2, mpi::Datatype::uint64(), mpi::Op::sum());
        const double bytesPerRecord =
            wire[1] == 0 ? 256.0 : static_cast<double>(wire[0]) / static_cast<double>(wire[1]);
        const RebalanceDecision price = priceRebalance(global, curLocal, proposal, ap,
                                                       bytesPerRecord, cfg.rebalanceThreshold);
        stats.balance.costGainSeconds = price.gainSeconds;
        stats.balance.costMigrateSeconds = price.migrateSeconds;
        costGated = !price.worthIt;
      }
    }

    if (stats.balance.imbalance < cfg.rebalanceThreshold || costGated) {
      stats.balance.skipped = true;
      stats.balance.costGated = costGated;
      stats.balance.ownedRecordsAfter = stats.balance.ownedRecordsBefore;
      obs::setGauge("balance.imbalance_after", stats.balance.imbalance);
    } else {
      obs::setGauge("balance.imbalance_after", imbalanceOf(proposal));
      const std::vector<int>& newLocal = proposal;
      std::vector<int> newWorld(newLocal.size());
      for (std::size_t c = 0; c < newLocal.size(); ++c) {
        newWorld[c] = activeWorld[static_cast<std::size_t>(newLocal[c])];
      }
      for (int c = 0; c < map.cellCount(); ++c) {
        if (newWorld[static_cast<std::size_t>(c)] != currentWorldOwner(c)) {
          stats.balance.cellsMoved += 1;
        }
      }
      stats.cellOwner = std::move(newWorld);

      // Budget-bounded migration: leaving cells are extracted (ascending
      // cell order) and shipped in passes of at most one store-budget
      // share of staged outgoing records — one whole cell of slack for a
      // cell larger than the share — so the transfer respects
      // StreamConfig::memoryBudget like every other phase. The passes
      // terminate collectively (a rank with nothing left still joins its
      // peers' remaining rounds). Every cell moves wholly within one
      // pass, so per-cell record order — all any consumer depends on —
      // is identical to the single-pass transfer.
      const auto migrateLayer = [&](CellStore& store) {
        std::vector<int> leaving;
        for (const int cell : store.cells()) {
          if (newLocal[static_cast<std::size_t>(cell)] != active.rank()) leaving.push_back(cell);
        }
        const std::uint64_t passBudget = storeBudget == 0 ? UINT64_MAX : storeBudget;
        std::size_t next = 0;
        while (true) {
          std::vector<geom::GeometryBatch> outgoing(static_cast<std::size_t>(ap));
          std::uint64_t staged = 0;
          while (next < leaving.size() && staged < passBudget) {
            const int cell = leaving[next++];
            geom::GeometryBatch extracted = store.extractCell(cell);
            staged += extracted.memoryBytes();
            outgoing[static_cast<std::size_t>(newLocal[static_cast<std::size_t>(cell)])].splice(
                std::move(extracted));
          }
          const std::uint64_t more = allreduceMaxU64(active, next < leaving.size() ? 1 : 0);
          geom::GeometryBatch got = migrateShards(active, std::move(outgoing),
                                                  cfg.migrationBlobBytes, &stats.balance.transport);
          store.addMigrated(std::move(got));
          stats.balance.migrationPasses += 1;
          if (more == 0) break;
        }
      };
      migrateLayer(ownedR);
      if (s != nullptr) migrateLayer(ownedS);

      stats.balance.ownedRecordsAfter = ownedR.records() + ownedS.records();
      stats.phases.migrateBytes = stats.balance.transport.bytesSent;
      stats.phases.migrateRounds = stats.balance.transport.blobsSent;
      obs::addCount("migrate.bytes", stats.balance.transport.bytesSent);
      obs::addCount("migrate.blobs", stats.balance.transport.blobsSent);
    }
    // Shard reloads during cell extraction charged themselves to the
    // spill phase; subtract them so total() counts the time once.
    stats.phases.migrate += (active.clock().now() - t0) - (stats.phases.spill - spillBefore);
    obs::traceEnd("migrate");
  }

  // 6: cell-major refine. Owned cells are visited in ascending cell-id
  // order; each cell's two record collections are served by the stores —
  // zero-copy spans into the owned batch in the resident regime, a
  // bounded external merge over cell-sorted shards in the streaming
  // regime, where the task also adopts the records cell by cell.
  const std::uint64_t reloadBase = ownedR.reloadBytes() + ownedS.reloadBytes();
  {
    // Main-thread CPU (loop bookkeeping, group assembly, merges,
    // adoption) is measured by mainTimer; each worker dispatch charges
    // its critical path (max worker CPU) on top.
    const double blockStart = comm.clock().now();
    const bool measureCells = obs::metricsOn();
    obs::traceBegin("compute");
    sim::ThreadCpuTimer mainTimer;
    double workerSeconds = 0;
    const bool streamingRefine = ownedR.streaming();
    const std::vector<int> cells = mergeCellLists(ownedR.cells(), ownedS.cells());
    stats.cellsOwned = cells.size();

    if (!parallelRefine) {
      for (const int cell : cells) {
        const geom::BatchSpan spanR = ownedR.cellSpan(cell);
        const geom::BatchSpan spanS = ownedS.cellSpan(cell);
        if (measureCells) {
          sim::ThreadCpuTimer cellTimer;
          refineThroughMap(task, map, cell, spanR, spanS);
          obs::observe("refine.cell_seconds", cellTimer.elapsed());
        } else {
          refineThroughMap(task, map, cell, spanR, spanS);
        }
        stats.refinePeakBytes =
            std::max(stats.refinePeakBytes, ownedR.trackedBytes() + ownedS.trackedBytes());
        if (streamingRefine) {
          // Per-cell adoption: the scratch batches the spans were built
          // over move to the task, so indices it captured stay valid.
          task.adoptBatches(ownedR.takeCellBatch(), ownedS.takeCellBatch());
        }
      }
      if (!streamingRefine) {
        // Whole-run adoption, as in the one-shot pipeline (records
        // migrated away by rebalancing are kNoCell-tombstoned).
        task.adoptBatches(ownedR.takeResidentBatch(), ownedS.takeResidentBatch());
      }
    } else {
      // Fanned-out refine (DESIGN.md §10). Cells are staged into bounded
      // groups; each group is cut into contiguous ascending-cell blocks,
      // one per worker, proportional to record weight. Because the blocks
      // are contiguous and the workers are merged back in worker order
      // after every group, the fold into the main task replays the exact
      // serial ascending-cell order — results are bit-identical at any
      // thread count. The stores (not thread-safe) are only touched here
      // on the main thread; workers read staged batches (streaming) or
      // read-only resident spans.
      const int nw = static_cast<int>(refineWorkers.size());
      struct CellWork {
        int cell = 0;
        geom::GeometryBatch r, s;  // staged owned batches (streaming)
        std::vector<std::uint32_t> idxR, idxS;
        geom::BatchSpan spanR, spanS;
      };
      std::vector<CellWork> group;
      std::uint64_t groupBytes = 0;

      const auto sealGroupSpans = [&group] {
        // Spans are built only once the group stops growing: vector
        // growth moves the CellWork structs (batch arenas stay put, but
        // the idx vectors' addresses must be final).
        for (CellWork& w : group) {
          w.spanR = geom::BatchSpan(&w.r, w.idxR.data(), w.idxR.size());
          w.spanS = geom::BatchSpan(&w.s, w.idxS.data(), w.idxS.size());
        }
      };
      const auto dispatchGroup = [&] {
        if (group.empty()) return;
        std::uint64_t totalWeight = 0;
        for (const CellWork& w : group) totalWeight += w.spanR.size() + w.spanS.size() + 1;
        // Deterministic proportional cuts over the weighted prefix.
        std::vector<std::size_t> cut(static_cast<std::size_t>(nw) + 1, group.size());
        cut[0] = 0;
        std::uint64_t prefix = 0;
        std::size_t i = 0;
        for (int t = 0; t + 1 < nw; ++t) {
          const std::uint64_t target =
              totalWeight * static_cast<std::uint64_t>(t + 1) / static_cast<std::uint64_t>(nw);
          while (i < group.size() && prefix < target) {
            prefix += group[i].spanR.size() + group[i].spanS.size() + 1;
            ++i;
          }
          cut[static_cast<std::size_t>(t) + 1] = i;
        }
        // Workers have no obs context: per-cell seconds land in a plain
        // array each worker owns a disjoint slice of; the rank thread
        // feeds the histogram (and the worker lanes) after the region.
        std::vector<double> cellSeconds;
        if (measureCells) cellSeconds.assign(group.size(), 0.0);
        const util::PoolTiming pt = pool->runOnWorkers([&](int t) {
          RefineTask& worker = *refineWorkers[static_cast<std::size_t>(t)];
          for (std::size_t k = cut[static_cast<std::size_t>(t)];
               k < cut[static_cast<std::size_t>(t) + 1]; ++k) {
            if (measureCells) {
              sim::ThreadCpuTimer cellTimer;
              refineThroughMap(worker, map, group[k].cell, group[k].spanR, group[k].spanS);
              cellSeconds[k] = cellTimer.elapsed();
            } else {
              refineThroughMap(worker, map, group[k].cell, group[k].spanR, group[k].spanS);
            }
          }
        });
        // Worker-lane spans: the region starts where the final
        // advanceBy(mainSeconds + workerSeconds) will place it — block
        // start plus main CPU so far plus earlier regions' critical paths.
        obs::traceWorkerSpans("compute", blockStart + mainTimer.elapsed() + workerSeconds,
                              pt.perWorker);
        workerSeconds += pt.cpuMax;
        stats.phases.workerCpu += pt.cpuSum;
        stats.phases.workerCritical += pt.cpuMax;
        for (const double cs : cellSeconds) obs::observe("refine.cell_seconds", cs);
        for (int t = 0; t < nw; ++t) task.mergeWorker(*refineWorkers[static_cast<std::size_t>(t)]);
        if (streamingRefine) {
          // Per-cell adoption in ascending order, after the merge so the
          // task sees results before their backing arenas move.
          for (CellWork& w : group) task.adoptBatches(std::move(w.r), std::move(w.s));
        }
        group.clear();
        groupBytes = 0;
      };

      for (const int cell : cells) {
        CellWork work;
        work.cell = cell;
        if (streamingRefine) {
          // The staged group squeezes both stores' merge windows so
          // window + group stays inside the configured budget.
          ownedR.setRefinePressure(groupBytes);
          ownedS.setRefinePressure(groupBytes);
          work.r = ownedR.takeCellAssembled(cell);
          work.s = ownedS.takeCellAssembled(cell);
          groupBytes += work.r.memoryBytes() + work.s.memoryBytes();
          work.idxR.resize(work.r.size());
          std::iota(work.idxR.begin(), work.idxR.end(), std::uint32_t{0});
          work.idxS.resize(work.s.size());
          std::iota(work.idxS.begin(), work.idxS.end(), std::uint32_t{0});
        } else {
          work.spanR = ownedR.cellSpan(cell);
          work.spanS = ownedS.cellSpan(cell);
        }
        group.push_back(std::move(work));
        stats.refinePeakBytes = std::max(
            stats.refinePeakBytes, ownedR.trackedBytes() + ownedS.trackedBytes() + groupBytes);
        if (streamingRefine && groupBytes >= refineGroupBytes) {
          sealGroupSpans();
          dispatchGroup();
        }
      }
      if (streamingRefine) sealGroupSpans();
      dispatchGroup();
      if (!streamingRefine) {
        task.adoptBatches(ownedR.takeResidentBatch(), ownedS.takeResidentBatch());
      }
    }
    const double mainSeconds = mainTimer.elapsed();
    comm.clock().advanceBy(mainSeconds + workerSeconds);
    stats.phases.compute += mainSeconds + workerSeconds;
    obs::traceEnd("compute");
  }
  stats.refinePeakBytes = std::max({stats.refinePeakBytes, ownedR.peakBytes(), ownedS.peakBytes()});
  // Only the refine loop's reloads; migration-extraction reloads are
  // priced in the spill phase and counted in FrameworkStats::spill.
  stats.phases.refineSpillBytes = ownedR.reloadBytes() + ownedS.reloadBytes() - reloadBase;

  ownedR.releaseBlobs();
  ownedS.releaseBlobs();
  stats.spill = spill.stats();
  spill.clear();
  return stats;
}

}  // namespace mvio::core
