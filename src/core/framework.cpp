#include "core/framework.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "core/cell_store.hpp"
#include "geom/batch_shard.hpp"
#include "io/file.hpp"
#include "recovery/recovery.hpp"
#include "util/error.hpp"

namespace mvio::core {

void RefineTask::adoptBatches(geom::GeometryBatch&& /*r*/, geom::GeometryBatch&& /*s*/) {
  // Default: drop the batches. Tasks that fully reduce inside
  // refineCellBatch (join counts, coverage sums) need nothing more; tasks
  // whose product outlives the pipeline (DistributedIndex) override this
  // and take the arenas wholesale.
}

namespace {

std::uint64_t allreduceMaxU64(mpi::Comm& comm, std::uint64_t v) {
  std::uint64_t out = 0;
  comm.allreduce(&v, &out, 1, mpi::Datatype::uint64(), mpi::Op::max());
  return out;
}

/// Rank-local spill plumbing shared by the streaming stages: encodes
/// batches to BatchShards on the rank's SpillStore and charges the
/// modelled scratch-I/O time (flat node-local rate, or the Volume's
/// storage model when the scratch lives on the PFS) to the rank clock /
/// spill phase.
struct Spiller {
  mpi::Comm* comm;
  pfs::SpillStore* store;
  pfs::SpillPricer pricer;
  PhaseBreakdown* phases;

  void charge(std::uint64_t bytes, bool isWrite) const {
    const double t = pricer.seconds(bytes, isWrite, comm->clock().now());
    comm->clock().advanceBy(t);
    phases->spill += t;
  }

  void spill(const std::string& name, const geom::GeometryBatch& b) const {
    std::string bytes;
    bytes.reserve(geom::shardEncodedSize(b, 0, b.size()));
    geom::encodeShard(b, bytes);
    charge(bytes.size(), /*isWrite=*/true);
    store->put(name, std::move(bytes));
  }

  /// Reload a shard, *appending* its records to `out`, and drop the blob.
  void reload(const std::string& name, geom::GeometryBatch& out) const {
    const std::string bytes = store->fetch(name);
    charge(bytes.size(), /*isWrite=*/false);
    geom::decodeShard(bytes, out);
    store->remove(name);
  }
};

/// FIFO of parsed-but-not-yet-exchanged chunk batches with a resident-byte
/// budget: when the queue's in-memory bytes exceed the budget, the oldest
/// resident batches are written out as shards (oldest first — they are
/// also the first to be reloaded, so the resident tail stays hot).
class BatchStager {
 public:
  BatchStager(const Spiller& spiller, std::string base, std::uint64_t budget)
      : spiller_(spiller), base_(std::move(base)), budget_(budget) {}

  void push(geom::GeometryBatch&& b) {
    Slot slot;
    slot.bytes = b.memoryBytes();
    slot.batch = std::move(b);
    resident_ += slot.bytes;
    slots_.push_back(std::move(slot));
    enforceBudget();
  }

  /// Pop the oldest chunk (reloading it if spilled). Returns false when
  /// the queue is empty — callers then run an empty round.
  bool pop(geom::GeometryBatch& out) {
    if (slots_.empty()) return false;
    Slot& front = slots_.front();
    if (front.spilled) {
      out = geom::GeometryBatch();
      spiller_.reload(front.shard, out);
    } else {
      resident_ -= front.bytes;
      out = std::move(front.batch);
    }
    slots_.pop_front();
    if (spillCursor_ > 0) --spillCursor_;
    return true;
  }

  [[nodiscard]] std::size_t pending() const { return slots_.size(); }

  /// Drop every pending chunk without reloading it — the post-recovery
  /// path re-derives the remaining rounds from the durable chunk log, so
  /// the staged copies (and their scratch blobs) are dead weight.
  void discard() {
    for (const Slot& slot : slots_) {
      if (slot.spilled) spiller_.store->remove(slot.shard);
    }
    slots_.clear();
    resident_ = 0;
    spillCursor_ = 0;
  }

 private:
  struct Slot {
    geom::GeometryBatch batch;
    std::string shard;
    std::uint64_t bytes = 0;
    bool spilled = false;
  };

  void enforceBudget() {
    // Invariant: slots_[0, spillCursor_) are spilled, the rest resident —
    // spilling proceeds front-to-back and pop() removes the front, so the
    // cursor avoids rescanning already-spilled slots on every push.
    while (resident_ > budget_ && spillCursor_ < slots_.size()) {
      Slot& slot = slots_[spillCursor_++];
      slot.shard = base_ + "." + std::to_string(seq_++);
      spiller_.spill(slot.shard, slot.batch);
      resident_ -= slot.bytes;
      slot.batch = geom::GeometryBatch();
      slot.spilled = true;
    }
  }

  Spiller spiller_;
  std::string base_;
  std::uint64_t budget_;
  std::deque<Slot> slots_;
  std::uint64_t resident_ = 0;
  std::size_t seq_ = 0;
  std::size_t spillCursor_ = 0;  ///< first not-yet-spilled slot
};

/// Phases 1+2 for one layer, chunk by chunk: partitioned read then parse
/// straight into a per-chunk batch (no per-record Geometry objects),
/// staged for the exchange rounds. Accumulates the layer's local MBR for
/// grid construction along the way. With checkpointing enabled every
/// parsed chunk is also written to the durable chunk log — the replay
/// source recovery re-derives lost rounds from.
void ingestLayer(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& ds,
                 const FrameworkConfig& cfg, BatchStager& stage, geom::Envelope& localBounds,
                 ParseStats& parseStats, PartitionResult& ioStats, PhaseBreakdown& phases,
                 recovery::CheckpointCoordinator& ckpt, int layer) {
  MVIO_CHECK(ds.parser != nullptr, "dataset needs a parser");
  io::File file = io::File::open(comm, volume, ds.path, cfg.ioHints);
  PartitionReader reader(comm, file, ds.partition, cfg.stream.chunkBytes);

  std::string text;
  while (true) {
    const double t0 = comm.clock().now();
    const bool more = reader.next(text);
    phases.read += comm.clock().now() - t0;
    if (!more) break;

    geom::GeometryBatch chunk;
    {
      mpi::CpuCharge charge(comm);
      const ParseStats ps = ds.parser->parseAll(text, chunk);
      parseStats.records += ps.records;
      parseStats.badRecords += ps.badRecords;
      parseStats.bytes += ps.bytes;
      phases.parse += charge.stop();
    }
    localBounds.expandToInclude(chunk.bounds());
    ckpt.logChunk(layer, chunk);
    stage.push(std::move(chunk));
  }
  ioStats = reader.counters();
}

/// Ascending union of two sorted cell-id lists.
std::vector<int> mergeCellLists(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

geom::GeometryBatch projectToCells(const GridSpec& grid, const CellLocator* locator,
                                   geom::GeometryBatch&& geoms) {
  const std::size_t n = geoms.size();
  std::vector<int> cells;
  for (std::size_t i = 0; i < n; ++i) {
    cells.clear();
    if (locator != nullptr) {
      locator->overlappingCells(geoms.envelope(i), cells);
    } else {
      grid.overlappingCells(geoms.envelope(i), cells);
    }
    if (cells.empty()) {
      geoms.setCell(i, geom::GeometryBatch::kNoCell);
      continue;
    }
    geoms.setCell(i, cells[0]);
    for (std::size_t k = 1; k < cells.size(); ++k) geoms.appendRecordFrom(geoms, i, cells[k]);
  }
  return std::move(geoms);
}

FrameworkStats runFilterRefine(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                               const DatasetHandle* s, const FrameworkConfig& cfg, RefineTask& task) {
  MVIO_CHECK(cfg.gridCells >= 1, "need at least one grid cell");
  FrameworkStats stats;
  const StreamConfig& sc = cfg.stream;
  const std::uint64_t budget = sc.memoryBudget == 0 ? UINT64_MAX : sc.memoryBudget;
  const int p = comm.size();

  // Checkpoint/recovery setup (DESIGN.md §9). Checkpoint blob names are
  // keyed by world rank, so the subsystem requires the launch (world)
  // communicator when enabled.
  recovery::CheckpointConfig ckptCfg;
  ckptCfg.everyRounds = sc.checkpointEveryRounds;
  ckptCfg.dir = sc.checkpointDir;
  ckptCfg.tearEpochSeal = sc.tearEpochSeal;
  recovery::CheckpointCoordinator ckpt(comm, volume, ckptCfg, &stats.phases);
  if (ckpt.enabled()) {
    MVIO_CHECK(comm.rank() == comm.worldRank(),
               "checkpointing requires the world communicator (blob names are world-rank keyed)");
  }
  std::vector<int> failRanks = cfg.failRanks;
  std::sort(failRanks.begin(), failRanks.end());
  failRanks.erase(std::unique(failRanks.begin(), failRanks.end()), failRanks.end());
  const bool injecting = !failRanks.empty();
  MVIO_CHECK(cfg.killPoint.afterRound == 0 || injecting,
             "killPoint set without failRanks — the kill would silently never fire");
  if (injecting) {
    MVIO_CHECK(cfg.killPoint.afterRound != 0, "failRanks set without a kill point");
    MVIO_CHECK(ckpt.enabled(),
               "failure injection requires StreamConfig::checkpointEveryRounds > 0");
    MVIO_CHECK(static_cast<int>(failRanks.size()) < p,
               "failure injection must leave at least one survivor");
    for (const int dead : failRanks) {
      MVIO_CHECK(dead >= 0 && dead < p, "failRanks entry outside the communicator");
    }
  }

  // Rank-local scratch for spilled shards; blobs are dropped on exit.
  pfs::SpillStore spill(volume, sc.spillDir + "/rank" + std::to_string(comm.worldRank()));
  const pfs::SpillPricer pricer = sc.spillOnPfs
                                      ? pfs::SpillPricer::onVolume(volume, comm.nodeId())
                                      : pfs::SpillPricer::flatRate(sc.spillBytesPerSecond);
  const Spiller spiller{&comm, &spill, pricer, &stats.phases};

  // 1+2: read and parse both layers, chunk by chunk, staging the parsed
  // batches (under the memory budget) for the exchange rounds.
  BatchStager stageR(spiller, "pend_r", budget);
  BatchStager stageS(spiller, "pend_s", budget);
  geom::Envelope localBounds;
  ingestLayer(comm, volume, r, cfg, stageR, localBounds, stats.parseR, stats.ioR, stats.phases,
              ckpt, 0);
  if (s != nullptr) {
    ingestLayer(comm, volume, *s, cfg, stageS, localBounds, stats.parseS, stats.ioS, stats.phases,
                ckpt, 1);
  }
  ckpt.sealIngest();

  // 3: global grid via MPI_UNION of local MBRs (both layers). Chunked
  // parsing folded every chunk's bounds into localBounds, so the union is
  // identical to a whole-batch scan.
  stats.grid = buildGlobalGrid(comm, localBounds, cfg.gridCells);
  const GridSpec& grid = stats.grid;

  std::optional<CellLocator> locator;
  if (cfg.rtreeCellLocator) locator.emplace(grid);
  auto owner = [p](int cell) { return roundRobinOwner(cell, p); };
  std::vector<int> rrOwner;
  if (ckpt.enabled()) {
    rrOwner.resize(static_cast<std::size_t>(grid.cellCount()));
    for (int c = 0; c < grid.cellCount(); ++c) rrOwner[static_cast<std::size_t>(c)] = owner(c);
  }

  // 4+5: project + exchange rounds per layer (communication phase).
  // exchangeByCell charges serialization/deserialization CPU internally;
  // the clock deltas accumulated per round therefore cover buffer
  // management + transfer, the paper's definition of communication time.
  // Received records accumulate into per-layer CellStores: resident when
  // the budget is unbounded, cell-sorted spill segments otherwise.
  const SpillChargeFn spillCharge = [&spiller](std::uint64_t bytes, bool isWrite) {
    spiller.charge(bytes, isWrite);
  };
  // Two-layer runs split the refine budget between the layer stores so
  // the reported peak (their sum) stays within the configured bound.
  const std::uint64_t storeBudget =
      (s != nullptr && sc.memoryBudget > 0) ? std::max<std::uint64_t>(sc.memoryBudget / 2, 1)
                                            : sc.memoryBudget;
  CellStore ownedR(&spill, "own_r", storeBudget, 0, spillCharge);
  CellStore ownedS(&spill, "own_s", storeBudget, 0, spillCharge);

  // The data-round schedule is fixed up front (the counts derive from the
  // staged chunks, allreduced): the kill point and the checkpoint epochs
  // are defined on the global data-round index — layer R's rounds first,
  // then layer S's — and recovery replays against the same schedule.
  const std::uint64_t roundsR = allreduceMaxU64(comm, stageR.pending());
  const std::uint64_t roundsS = s != nullptr ? allreduceMaxU64(comm, stageS.pending()) : 0;
  if (injecting) {
    MVIO_CHECK(cfg.killPoint.afterRound <= roundsR + roundsS,
               "kill point lies beyond the data-round schedule");
  }

  mpi::Comm active = comm;  ///< shrinks to the survivors after a recovery
  std::vector<int> activeWorld;  ///< active-local rank -> world rank (post-recovery)
  bool recovered = false;
  std::uint64_t globalRound = 0;

  // One layer's rounds. Returns false when the schedule was cut short —
  // this rank died, or a recovery re-derived every remaining round from
  // the durable log (no further exchanges happen either way).
  const auto runLayerRounds = [&](int layer, BatchStager& stage, CellStore& owned,
                                  std::uint64_t rounds) -> bool {
    const bool streaming = sc.chunkBytes > 0;
    for (std::uint64_t round = 0; round < rounds; ++round) {
      geom::GeometryBatch chunk;
      stage.pop(chunk);  // false → empty round for this rank
      {
        mpi::CpuCharge charge(comm);
        chunk = projectToCells(grid, locator ? &*locator : nullptr, std::move(chunk));
        stats.phases.partition += charge.stop();
      }
      const bool last = !streaming && round + 1 == rounds;
      const double t0 = comm.clock().now();
      geom::GeometryBatch got = exchangeByCell(comm, std::move(chunk), owner, cfg.windowPhases,
                                               grid.cellCount(), &stats.exchange, {}, last);
      stats.phases.comm += comm.clock().now() - t0;
      stats.phases.rounds += 1;
      ckpt.noteRound(layer, got);
      owned.add(std::move(got));
      globalRound += 1;
      ckpt.maybeCheckpoint(globalRound, rrOwner);

      if (injecting && cfg.killPoint.fires(globalRound)) {
        // Failure detection: one last collective every original rank
        // takes part in (the simulation's failure detector), then the
        // communicator shrinks to the survivors and the dead ranks leave
        // with their volatile state.
        const bool alive =
            std::find(failRanks.begin(), failRanks.end(), comm.worldRank()) == failRanks.end();
        const std::int32_t mine = alive ? comm.worldRank() : ~comm.worldRank();
        std::vector<std::int32_t> flags(static_cast<std::size_t>(p), 0);
        comm.allgather(&mine, 1, mpi::Datatype::int32(), flags.data());
        mpi::Comm shrunk = comm.split(alive ? 1 : 0, comm.rank());
        if (!alive) {
          stats.recovery.died = true;
          return false;
        }
        active = shrunk;
        recovery::RecoveryContext ctx;
        ctx.checkpoint = ckptCfg;
        ctx.worldSize = p;
        for (const std::int32_t f : flags) {
          (f >= 0 ? ctx.survivorWorld : ctx.deadRanks).push_back(f >= 0 ? f : ~f);
        }
        std::sort(ctx.deadRanks.begin(), ctx.deadRanks.end());
        ctx.failRound = globalRound;
        ctx.roundsPerLayer[0] = roundsR;
        ctx.roundsPerLayer[1] = roundsS;
        ctx.grid = &grid;
        ctx.locator = locator ? &*locator : nullptr;
        recovery::RecoveryOutcome outcome = recovery::recoverFromFailure(
            active, volume, ctx, ownedR, s != nullptr ? &ownedS : nullptr, &stats.phases);
        stats.recovery = outcome.stats;
        stats.cellOwner = std::move(outcome.cellOwner);
        activeWorld = std::move(ctx.survivorWorld);
        recovered = true;
        return false;
      }
    }
    if (streaming) {
      // Termination barrier: an empty round whose header carries
      // kRoundLast on every rank, making "no records this round" and
      // "stream over" distinct on the wire.
      const double t0 = comm.clock().now();
      geom::GeometryBatch got =
          exchangeByCell(comm, geom::GeometryBatch(), owner, cfg.windowPhases, grid.cellCount(),
                         &stats.exchange, {}, /*lastRound=*/true);
      stats.phases.comm += comm.clock().now() - t0;
      stats.phases.rounds += 1;
      owned.add(std::move(got));
    }
    return true;
  };

  bool onSchedule = runLayerRounds(0, stageR, ownedR, roundsR);
  if (onSchedule && s != nullptr) onSchedule = runLayerRounds(1, stageS, ownedS, roundsS);

  if (stats.recovery.died) {
    // Fail-stop: the rank's volatile state — staged chunks, owned cell
    // stores, scratch spill blobs — dies with it. Only the durable
    // checkpoint blobs it already wrote survive on the volume. Its task
    // never refines and it joins no further collective.
    spill.clear();
    stats.spill = spill.stats();
    return stats;
  }
  if (recovered) {
    // Every remaining round was re-derived from the chunk log; the
    // staged copies (and the dead ranks' stale deliveries they would
    // duplicate) are discarded.
    stageR.discard();
    stageS.discard();
    stats.activeComm = active;
  }

  ownedR.finalize();
  ownedS.finalize();
  stats.localR = ownedR.records();
  stats.localS = ownedS.records();

  // 5b: skew-aware owned-cell rebalancing, on the active (possibly
  // shrunk) communicator. Every rank reduces the global per-cell loads
  // and measures the imbalance; when it clears the adaptive threshold,
  // all repeat the same deterministic LPT assignment and ship leaving
  // cells point-to-point as checksummed shard blobs.
  const int ap = active.size();
  if (cfg.rebalanceCells && ap > 1) {
    const double t0 = active.clock().now();
    const double spillBefore = stats.phases.spill;
    stats.balance.ownedRecordsBefore = ownedR.records() + ownedS.records();
    std::vector<std::uint64_t> loads(static_cast<std::size_t>(grid.cellCount()), 0);
    ownedR.accumulateCellLoads(loads);
    ownedS.accumulateCellLoads(loads);
    std::vector<std::uint64_t> global(loads.size(), 0);
    active.allreduce(loads.data(), global.data(), static_cast<int>(loads.size()),
                     mpi::Datatype::uint64(), mpi::Op::sum());

    if (activeWorld.empty()) {
      activeWorld.resize(static_cast<std::size_t>(ap));
      std::iota(activeWorld.begin(), activeWorld.end(), 0);
    }
    std::vector<int> worldToLocal(static_cast<std::size_t>(p), -1);
    for (int local = 0; local < ap; ++local) {
      worldToLocal[static_cast<std::size_t>(activeWorld[static_cast<std::size_t>(local)])] = local;
    }
    // Current ownership in world ranks: the recovery map when one ran,
    // round-robin over the launch size otherwise.
    const auto currentWorldOwner = [&](int cell) {
      return stats.cellOwner.empty() ? roundRobinOwner(cell, p)
                                     : stats.cellOwner[static_cast<std::size_t>(cell)];
    };

    // Adaptive trigger: measure the max/mean per-rank load ratio under
    // the current map and skip the pass — and its wire traffic — when
    // the owned loads are already within the threshold.
    std::vector<std::uint64_t> perRank(static_cast<std::size_t>(ap), 0);
    std::uint64_t total = 0;
    for (int c = 0; c < grid.cellCount(); ++c) {
      const int local = worldToLocal[static_cast<std::size_t>(currentWorldOwner(c))];
      MVIO_CHECK(local >= 0, "rebalance: cell owned by a rank outside the active communicator");
      perRank[static_cast<std::size_t>(local)] += global[static_cast<std::size_t>(c)];
      total += global[static_cast<std::size_t>(c)];
    }
    const std::uint64_t maxLoad = *std::max_element(perRank.begin(), perRank.end());
    const double mean = static_cast<double>(total) / static_cast<double>(ap);
    stats.balance.imbalance = total == 0 ? 0.0 : static_cast<double>(maxLoad) / mean;

    if (stats.balance.imbalance < cfg.rebalanceThreshold) {
      stats.balance.skipped = true;
      stats.balance.ownedRecordsAfter = stats.balance.ownedRecordsBefore;
    } else {
      const std::vector<int> newLocal = lptAssignCells(global, ap);
      std::vector<int> newWorld(newLocal.size());
      for (std::size_t c = 0; c < newLocal.size(); ++c) {
        newWorld[c] = activeWorld[static_cast<std::size_t>(newLocal[c])];
      }
      for (int c = 0; c < grid.cellCount(); ++c) {
        if (newWorld[static_cast<std::size_t>(c)] != currentWorldOwner(c)) {
          stats.balance.cellsMoved += 1;
        }
      }
      stats.cellOwner = std::move(newWorld);

      const auto migrateLayer = [&](CellStore& store) {
        std::vector<geom::GeometryBatch> outgoing(static_cast<std::size_t>(ap));
        for (const int cell : store.cells()) {
          const int dst = newLocal[static_cast<std::size_t>(cell)];
          if (dst == active.rank()) continue;
          outgoing[static_cast<std::size_t>(dst)].splice(store.extractCell(cell));
        }
        geom::GeometryBatch got = migrateShards(active, std::move(outgoing),
                                                cfg.migrationBlobBytes, &stats.balance.transport);
        store.addMigrated(std::move(got));
      };
      migrateLayer(ownedR);
      if (s != nullptr) migrateLayer(ownedS);

      stats.balance.ownedRecordsAfter = ownedR.records() + ownedS.records();
      stats.phases.migrateBytes = stats.balance.transport.bytesSent;
      stats.phases.migrateRounds = stats.balance.transport.blobsSent;
    }
    // Shard reloads during cell extraction charged themselves to the
    // spill phase; subtract them so total() counts the time once.
    stats.phases.migrate += (active.clock().now() - t0) - (stats.phases.spill - spillBefore);
  }

  // 6: cell-major refine. Owned cells are visited in ascending cell-id
  // order; each cell's two record collections are served by the stores —
  // zero-copy spans into the owned batch in the resident regime, a
  // bounded external merge over cell-sorted shards in the streaming
  // regime, where the task also adopts the records cell by cell.
  const std::uint64_t reloadBase = ownedR.reloadBytes() + ownedS.reloadBytes();
  {
    mpi::CpuCharge charge(comm);
    const bool streamingRefine = ownedR.streaming();
    const std::vector<int> cells = mergeCellLists(ownedR.cells(), ownedS.cells());
    stats.cellsOwned = cells.size();
    for (const int cell : cells) {
      const geom::BatchSpan spanR = ownedR.cellSpan(cell);
      const geom::BatchSpan spanS = ownedS.cellSpan(cell);
      task.refineCellBatch(grid, cell, spanR, spanS);
      stats.refinePeakBytes =
          std::max(stats.refinePeakBytes, ownedR.trackedBytes() + ownedS.trackedBytes());
      if (streamingRefine) {
        // Per-cell adoption: the scratch batches the spans were built over
        // move to the task, so indices it captured stay valid.
        task.adoptBatches(ownedR.takeCellBatch(), ownedS.takeCellBatch());
      }
    }
    if (!streamingRefine) {
      // Whole-run adoption, as in the one-shot pipeline (records migrated
      // away by rebalancing are kNoCell-tombstoned in the batch).
      task.adoptBatches(ownedR.takeResidentBatch(), ownedS.takeResidentBatch());
    }
    stats.phases.compute += charge.stop();
  }
  stats.refinePeakBytes = std::max({stats.refinePeakBytes, ownedR.peakBytes(), ownedS.peakBytes()});
  // Only the refine loop's reloads; migration-extraction reloads are
  // priced in the spill phase and counted in FrameworkStats::spill.
  stats.phases.refineSpillBytes = ownedR.reloadBytes() + ownedS.reloadBytes() - reloadBase;

  ownedR.releaseBlobs();
  ownedS.releaseBlobs();
  stats.spill = spill.stats();
  spill.clear();
  return stats;
}

}  // namespace mvio::core
