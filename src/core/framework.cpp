#include "core/framework.hpp"

#include <unordered_map>

#include "io/file.hpp"
#include "util/error.hpp"

namespace mvio::core {

namespace {

/// Phase 1+2 for one layer: partitioned read then parse.
void loadLayer(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& ds,
               const FrameworkConfig& cfg, std::vector<geom::Geometry>& out, ParseStats& parseStats,
               PartitionResult& ioStats, PhaseBreakdown& phases) {
  MVIO_CHECK(ds.parser != nullptr, "dataset needs a parser");
  io::File file = io::File::open(comm, volume, ds.path, cfg.ioHints);

  const double t0 = comm.clock().now();
  PartitionResult part = readPartitioned(comm, file, ds.partition);
  phases.read += comm.clock().now() - t0;

  {
    mpi::CpuCharge charge(comm);
    parseStats = ds.parser->parseAll(part.text, [&](geom::Geometry&& g) { out.push_back(std::move(g)); });
    phases.parse += charge.stop();
  }
  ioStats = std::move(part);
  ioStats.text.clear();  // the text has been consumed; keep only the counters
}

/// Phase 4: map geometries to overlapping cells (with replication).
std::vector<CellGeometry> project(const GridSpec& grid, const CellLocator* locator,
                                  std::vector<geom::Geometry>&& geoms) {
  std::vector<CellGeometry> out;
  out.reserve(geoms.size());
  std::vector<int> cells;
  for (auto& g : geoms) {
    cells.clear();
    if (locator != nullptr) {
      locator->overlappingCells(g.envelope(), cells);
    } else {
      grid.overlappingCells(g.envelope(), cells);
    }
    // A geometry spanning multiple cells is replicated to each of them;
    // duplicate results are avoided later in the refine phase.
    for (std::size_t k = 0; k < cells.size(); ++k) {
      if (k + 1 == cells.size()) {
        out.push_back({cells[k], std::move(g)});
      } else {
        out.push_back({cells[k], g});
      }
    }
  }
  geoms.clear();
  return out;
}

}  // namespace

FrameworkStats runFilterRefine(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                               const DatasetHandle* s, const FrameworkConfig& cfg, RefineTask& task) {
  MVIO_CHECK(cfg.gridCells >= 1, "need at least one grid cell");
  FrameworkStats stats;

  // 1+2: read and parse both layers.
  std::vector<geom::Geometry> geomsR, geomsS;
  loadLayer(comm, volume, r, cfg, geomsR, stats.parseR, stats.ioR, stats.phases);
  if (s != nullptr) {
    loadLayer(comm, volume, *s, cfg, geomsS, stats.parseS, stats.ioS, stats.phases);
  }

  // 3: global grid via MPI_UNION of local MBRs (both layers).
  {
    std::vector<geom::Geometry> all;  // envelopes only matter; borrow views cheaply
    all.reserve(geomsR.size() + geomsS.size());
    geom::Envelope localBounds;
    for (const auto& g : geomsR) localBounds.expandToInclude(g.envelope());
    for (const auto& g : geomsS) localBounds.expandToInclude(g.envelope());
    // buildGlobalGrid reduces envelopes; feed it a single box geometry to
    // avoid copying the data. An empty rank contributes a null envelope.
    if (!localBounds.isNull()) all.push_back(geom::Geometry::box(localBounds));
    stats.grid = buildGlobalGrid(comm, all, cfg.gridCells);
  }
  const GridSpec& grid = stats.grid;

  // 4: project to cells (filter phase).
  std::optional<CellLocator> locator;
  if (cfg.rtreeCellLocator) locator.emplace(grid);
  std::vector<CellGeometry> outR, outS;
  {
    mpi::CpuCharge charge(comm);
    outR = project(grid, locator ? &*locator : nullptr, std::move(geomsR));
    outS = project(grid, locator ? &*locator : nullptr, std::move(geomsS));
    stats.phases.partition += charge.stop();
  }

  // 5: all-to-all exchange (communication phase), one round per layer.
  const int p = comm.size();
  auto owner = [p](int cell) { return roundRobinOwner(cell, p); };
  std::vector<CellGeometry> mineR, mineS;
  {
    // exchangeByCell charges serialization/deserialization CPU internally;
    // the clock delta here therefore covers buffer management + transfer,
    // the paper's definition of communication time.
    const double t0 = comm.clock().now();
    mineR = exchangeByCell(comm, std::move(outR), owner, cfg.windowPhases, grid.cellCount(),
                           &stats.exchange);
    if (s != nullptr) {
      mineS = exchangeByCell(comm, std::move(outS), owner, cfg.windowPhases, grid.cellCount(),
                             &stats.exchange);
    }
    stats.phases.comm += comm.clock().now() - t0;
  }
  stats.localR = mineR.size();
  stats.localS = mineS.size();

  // 6: group by cell and run refine tasks.
  {
    mpi::CpuCharge charge(comm);
    std::unordered_map<int, std::pair<std::vector<geom::Geometry>, std::vector<geom::Geometry>>> cells;
    for (auto& cg : mineR) cells[cg.cell].first.push_back(std::move(cg.geometry));
    for (auto& cg : mineS) cells[cg.cell].second.push_back(std::move(cg.geometry));
    stats.cellsOwned = cells.size();
    for (auto& [cell, pair] : cells) {
      task.refineCell(grid, cell, pair.first, pair.second);
    }
    stats.phases.compute += charge.stop();
  }

  return stats;
}

}  // namespace mvio::core
