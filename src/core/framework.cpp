#include "core/framework.hpp"

#include <unordered_map>

#include "io/file.hpp"
#include "util/error.hpp"

namespace mvio::core {

void RefineTask::adoptBatches(geom::GeometryBatch&& /*r*/, geom::GeometryBatch&& /*s*/) {
  // Default: drop the batches. Tasks that fully reduce inside
  // refineCellBatch (join counts, coverage sums) need nothing more; tasks
  // whose product outlives the pipeline (DistributedIndex) override this
  // and take the arenas wholesale.
}

namespace {

/// Phase 1+2 for one layer: partitioned read then parse straight into the
/// batch arenas (no per-record Geometry objects).
void loadLayer(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& ds,
               const FrameworkConfig& cfg, geom::GeometryBatch& out, ParseStats& parseStats,
               PartitionResult& ioStats, PhaseBreakdown& phases) {
  MVIO_CHECK(ds.parser != nullptr, "dataset needs a parser");
  io::File file = io::File::open(comm, volume, ds.path, cfg.ioHints);

  const double t0 = comm.clock().now();
  PartitionResult part = readPartitioned(comm, file, ds.partition);
  phases.read += comm.clock().now() - t0;

  {
    mpi::CpuCharge charge(comm);
    parseStats = ds.parser->parseAll(part.text, out);
    phases.parse += charge.stop();
  }
  ioStats = std::move(part);
  ioStats.text.clear();  // the text has been consumed; keep only the counters
  ioStats.text.shrink_to_fit();
}

/// Phase 4: map records to overlapping cells, in place. The first cell is
/// assigned to the existing record; a geometry spanning k cells appends
/// k-1 arena-copied replicas (duplicate results are avoided later in the
/// refine phase). Records overlapping no cell are tombstoned with kNoCell.
geom::GeometryBatch project(const GridSpec& grid, const CellLocator* locator,
                            geom::GeometryBatch&& geoms) {
  const std::size_t n = geoms.size();
  std::vector<int> cells;
  for (std::size_t i = 0; i < n; ++i) {
    cells.clear();
    if (locator != nullptr) {
      locator->overlappingCells(geoms.envelope(i), cells);
    } else {
      grid.overlappingCells(geoms.envelope(i), cells);
    }
    if (cells.empty()) {
      geoms.setCell(i, geom::GeometryBatch::kNoCell);
      continue;
    }
    geoms.setCell(i, cells[0]);
    for (std::size_t k = 1; k < cells.size(); ++k) geoms.appendRecordFrom(geoms, i, cells[k]);
  }
  return std::move(geoms);
}

}  // namespace

FrameworkStats runFilterRefine(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                               const DatasetHandle* s, const FrameworkConfig& cfg, RefineTask& task) {
  MVIO_CHECK(cfg.gridCells >= 1, "need at least one grid cell");
  FrameworkStats stats;

  // 1+2: read and parse both layers.
  geom::GeometryBatch batchR, batchS;
  loadLayer(comm, volume, r, cfg, batchR, stats.parseR, stats.ioR, stats.phases);
  if (s != nullptr) {
    loadLayer(comm, volume, *s, cfg, batchS, stats.parseS, stats.ioS, stats.phases);
  }

  // 3: global grid via MPI_UNION of local MBRs (both layers). The batches
  // keep per-record envelopes, so the local bound is one linear scan.
  {
    geom::Envelope localBounds = batchR.bounds();
    localBounds.expandToInclude(batchS.bounds());
    stats.grid = buildGlobalGrid(comm, localBounds, cfg.gridCells);
  }
  const GridSpec& grid = stats.grid;

  // 4: project to cells (filter phase).
  std::optional<CellLocator> locator;
  if (cfg.rtreeCellLocator) locator.emplace(grid);
  {
    mpi::CpuCharge charge(comm);
    batchR = project(grid, locator ? &*locator : nullptr, std::move(batchR));
    batchS = project(grid, locator ? &*locator : nullptr, std::move(batchS));
    stats.phases.partition += charge.stop();
  }

  // 5: all-to-all exchange (communication phase), one round per layer.
  const int p = comm.size();
  auto owner = [p](int cell) { return roundRobinOwner(cell, p); };
  geom::GeometryBatch mineR, mineS;
  {
    // exchangeByCell charges serialization/deserialization CPU internally;
    // the clock delta here therefore covers buffer management + transfer,
    // the paper's definition of communication time.
    const double t0 = comm.clock().now();
    mineR = exchangeByCell(comm, std::move(batchR), owner, cfg.windowPhases, grid.cellCount(),
                           &stats.exchange);
    if (s != nullptr) {
      mineS = exchangeByCell(comm, std::move(batchS), owner, cfg.windowPhases, grid.cellCount(),
                             &stats.exchange);
    }
    stats.phases.comm += comm.clock().now() - t0;
  }
  stats.localR = mineR.size();
  stats.localS = mineS.size();

  // 6: group record indices by cell and run refine tasks over batch spans.
  {
    mpi::CpuCharge charge(comm);
    std::unordered_map<int, std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>> cells;
    for (std::size_t i = 0; i < mineR.size(); ++i) {
      cells[mineR.cell(i)].first.push_back(static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i < mineS.size(); ++i) {
      cells[mineS.cell(i)].second.push_back(static_cast<std::uint32_t>(i));
    }
    stats.cellsOwned = cells.size();
    for (auto& [cell, pair] : cells) {
      task.refineCellBatch(grid, cell,
                           geom::BatchSpan(&mineR, pair.first.data(), pair.first.size()),
                           geom::BatchSpan(&mineS, pair.second.data(), pair.second.size()));
    }
    // Hand the batches to the task; record indices it captured during the
    // refine loop stay valid in the adopted arenas.
    task.adoptBatches(std::move(mineR), std::move(mineS));
    stats.phases.compute += charge.stop();
  }

  return stats;
}

}  // namespace mvio::core
