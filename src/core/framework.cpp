#include "core/framework.hpp"

#include <algorithm>
#include <deque>

#include "core/cell_store.hpp"
#include "geom/batch_shard.hpp"
#include "io/file.hpp"
#include "util/error.hpp"

namespace mvio::core {

void RefineTask::adoptBatches(geom::GeometryBatch&& /*r*/, geom::GeometryBatch&& /*s*/) {
  // Default: drop the batches. Tasks that fully reduce inside
  // refineCellBatch (join counts, coverage sums) need nothing more; tasks
  // whose product outlives the pipeline (DistributedIndex) override this
  // and take the arenas wholesale.
}

namespace {

std::uint64_t allreduceMaxU64(mpi::Comm& comm, std::uint64_t v) {
  std::uint64_t out = 0;
  comm.allreduce(&v, &out, 1, mpi::Datatype::uint64(), mpi::Op::max());
  return out;
}

/// Rank-local spill plumbing shared by the streaming stages: encodes
/// batches to BatchShards on the rank's SpillStore and charges the
/// modelled scratch-I/O time (flat node-local rate, or the Volume's
/// storage model when the scratch lives on the PFS) to the rank clock /
/// spill phase.
struct Spiller {
  mpi::Comm* comm;
  pfs::SpillStore* store;
  pfs::SpillPricer pricer;
  PhaseBreakdown* phases;

  void charge(std::uint64_t bytes, bool isWrite) const {
    const double t = pricer.seconds(bytes, isWrite, comm->clock().now());
    comm->clock().advanceBy(t);
    phases->spill += t;
  }

  void spill(const std::string& name, const geom::GeometryBatch& b) const {
    std::string bytes;
    bytes.reserve(geom::shardEncodedSize(b, 0, b.size()));
    geom::encodeShard(b, bytes);
    charge(bytes.size(), /*isWrite=*/true);
    store->put(name, std::move(bytes));
  }

  /// Reload a shard, *appending* its records to `out`, and drop the blob.
  void reload(const std::string& name, geom::GeometryBatch& out) const {
    const std::string bytes = store->fetch(name);
    charge(bytes.size(), /*isWrite=*/false);
    geom::decodeShard(bytes, out);
    store->remove(name);
  }
};

/// FIFO of parsed-but-not-yet-exchanged chunk batches with a resident-byte
/// budget: when the queue's in-memory bytes exceed the budget, the oldest
/// resident batches are written out as shards (oldest first — they are
/// also the first to be reloaded, so the resident tail stays hot).
class BatchStager {
 public:
  BatchStager(const Spiller& spiller, std::string base, std::uint64_t budget)
      : spiller_(spiller), base_(std::move(base)), budget_(budget) {}

  void push(geom::GeometryBatch&& b) {
    Slot slot;
    slot.bytes = b.memoryBytes();
    slot.batch = std::move(b);
    resident_ += slot.bytes;
    slots_.push_back(std::move(slot));
    enforceBudget();
  }

  /// Pop the oldest chunk (reloading it if spilled). Returns false when
  /// the queue is empty — callers then run an empty round.
  bool pop(geom::GeometryBatch& out) {
    if (slots_.empty()) return false;
    Slot& front = slots_.front();
    if (front.spilled) {
      out = geom::GeometryBatch();
      spiller_.reload(front.shard, out);
    } else {
      resident_ -= front.bytes;
      out = std::move(front.batch);
    }
    slots_.pop_front();
    if (spillCursor_ > 0) --spillCursor_;
    return true;
  }

  [[nodiscard]] std::size_t pending() const { return slots_.size(); }

 private:
  struct Slot {
    geom::GeometryBatch batch;
    std::string shard;
    std::uint64_t bytes = 0;
    bool spilled = false;
  };

  void enforceBudget() {
    // Invariant: slots_[0, spillCursor_) are spilled, the rest resident —
    // spilling proceeds front-to-back and pop() removes the front, so the
    // cursor avoids rescanning already-spilled slots on every push.
    while (resident_ > budget_ && spillCursor_ < slots_.size()) {
      Slot& slot = slots_[spillCursor_++];
      slot.shard = base_ + "." + std::to_string(seq_++);
      spiller_.spill(slot.shard, slot.batch);
      resident_ -= slot.bytes;
      slot.batch = geom::GeometryBatch();
      slot.spilled = true;
    }
  }

  Spiller spiller_;
  std::string base_;
  std::uint64_t budget_;
  std::deque<Slot> slots_;
  std::uint64_t resident_ = 0;
  std::size_t seq_ = 0;
  std::size_t spillCursor_ = 0;  ///< first not-yet-spilled slot
};

/// Phases 1+2 for one layer, chunk by chunk: partitioned read then parse
/// straight into a per-chunk batch (no per-record Geometry objects),
/// staged for the exchange rounds. Accumulates the layer's local MBR for
/// grid construction along the way.
void ingestLayer(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& ds,
                 const FrameworkConfig& cfg, BatchStager& stage, geom::Envelope& localBounds,
                 ParseStats& parseStats, PartitionResult& ioStats, PhaseBreakdown& phases) {
  MVIO_CHECK(ds.parser != nullptr, "dataset needs a parser");
  io::File file = io::File::open(comm, volume, ds.path, cfg.ioHints);
  PartitionReader reader(comm, file, ds.partition, cfg.stream.chunkBytes);

  std::string text;
  while (true) {
    const double t0 = comm.clock().now();
    const bool more = reader.next(text);
    phases.read += comm.clock().now() - t0;
    if (!more) break;

    geom::GeometryBatch chunk;
    {
      mpi::CpuCharge charge(comm);
      const ParseStats ps = ds.parser->parseAll(text, chunk);
      parseStats.records += ps.records;
      parseStats.badRecords += ps.badRecords;
      parseStats.bytes += ps.bytes;
      phases.parse += charge.stop();
    }
    localBounds.expandToInclude(chunk.bounds());
    stage.push(std::move(chunk));
  }
  ioStats = reader.counters();
}

/// Phase 4: map records to overlapping cells, in place. The first cell is
/// assigned to the existing record; a geometry spanning k cells appends
/// k-1 arena-copied replicas (duplicate results are avoided later in the
/// refine phase). Records overlapping no cell are tombstoned with kNoCell.
geom::GeometryBatch project(const GridSpec& grid, const CellLocator* locator,
                            geom::GeometryBatch&& geoms) {
  const std::size_t n = geoms.size();
  std::vector<int> cells;
  for (std::size_t i = 0; i < n; ++i) {
    cells.clear();
    if (locator != nullptr) {
      locator->overlappingCells(geoms.envelope(i), cells);
    } else {
      grid.overlappingCells(geoms.envelope(i), cells);
    }
    if (cells.empty()) {
      geoms.setCell(i, geom::GeometryBatch::kNoCell);
      continue;
    }
    geoms.setCell(i, cells[0]);
    for (std::size_t k = 1; k < cells.size(); ++k) geoms.appendRecordFrom(geoms, i, cells[k]);
  }
  return std::move(geoms);
}

/// Phases 4+5 for one layer: one project + exchange round per staged
/// chunk, every round's received records folded into the owned cell
/// store. In streaming mode the data rounds are followed by one
/// empty round flagged `last`, the stream-termination barrier; in
/// one-shot mode the single data round is itself final. The round count
/// is allreduced so a rank whose stage drained early keeps participating
/// with empty rounds instead of leaving the collectives (and the peers
/// that still hold data) hanging.
void streamLayer(mpi::Comm& comm, BatchStager& stage, CellStore& owned, const GridSpec& grid,
                 const CellLocator* locator, const CellOwnerFn& ownerFn,
                 const FrameworkConfig& cfg, FrameworkStats& stats) {
  const bool streaming = cfg.stream.chunkBytes > 0;
  const std::uint64_t rounds = allreduceMaxU64(comm, stage.pending());
  for (std::uint64_t round = 0; round < rounds; ++round) {
    geom::GeometryBatch chunk;
    stage.pop(chunk);  // false → empty round for this rank
    {
      mpi::CpuCharge charge(comm);
      chunk = project(grid, locator, std::move(chunk));
      stats.phases.partition += charge.stop();
    }
    const bool last = !streaming && round + 1 == rounds;
    const double t0 = comm.clock().now();
    geom::GeometryBatch got = exchangeByCell(comm, std::move(chunk), ownerFn, cfg.windowPhases,
                                             grid.cellCount(), &stats.exchange, {}, last);
    stats.phases.comm += comm.clock().now() - t0;
    stats.phases.rounds += 1;
    owned.add(std::move(got));
  }
  if (streaming) {
    // Termination barrier: an empty round whose header carries kRoundLast
    // on every rank, making "no records this round" and "stream over"
    // distinct on the wire.
    const double t0 = comm.clock().now();
    geom::GeometryBatch got =
        exchangeByCell(comm, geom::GeometryBatch(), ownerFn, cfg.windowPhases, grid.cellCount(),
                       &stats.exchange, {}, /*lastRound=*/true);
    stats.phases.comm += comm.clock().now() - t0;
    stats.phases.rounds += 1;
    owned.add(std::move(got));
  }
}

/// Ascending union of two sorted cell-id lists.
std::vector<int> mergeCellLists(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace

FrameworkStats runFilterRefine(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                               const DatasetHandle* s, const FrameworkConfig& cfg, RefineTask& task) {
  MVIO_CHECK(cfg.gridCells >= 1, "need at least one grid cell");
  FrameworkStats stats;
  const StreamConfig& sc = cfg.stream;
  const std::uint64_t budget = sc.memoryBudget == 0 ? UINT64_MAX : sc.memoryBudget;

  // Rank-local scratch for spilled shards; blobs are dropped on exit.
  pfs::SpillStore spill(volume, sc.spillDir + "/rank" + std::to_string(comm.worldRank()));
  const pfs::SpillPricer pricer = sc.spillOnPfs
                                      ? pfs::SpillPricer::onVolume(volume, comm.nodeId())
                                      : pfs::SpillPricer::flatRate(sc.spillBytesPerSecond);
  const Spiller spiller{&comm, &spill, pricer, &stats.phases};

  // 1+2: read and parse both layers, chunk by chunk, staging the parsed
  // batches (under the memory budget) for the exchange rounds.
  BatchStager stageR(spiller, "pend_r", budget);
  BatchStager stageS(spiller, "pend_s", budget);
  geom::Envelope localBounds;
  ingestLayer(comm, volume, r, cfg, stageR, localBounds, stats.parseR, stats.ioR, stats.phases);
  if (s != nullptr) {
    ingestLayer(comm, volume, *s, cfg, stageS, localBounds, stats.parseS, stats.ioS, stats.phases);
  }

  // 3: global grid via MPI_UNION of local MBRs (both layers). Chunked
  // parsing folded every chunk's bounds into localBounds, so the union is
  // identical to a whole-batch scan.
  stats.grid = buildGlobalGrid(comm, localBounds, cfg.gridCells);
  const GridSpec& grid = stats.grid;

  std::optional<CellLocator> locator;
  if (cfg.rtreeCellLocator) locator.emplace(grid);
  const int p = comm.size();
  auto owner = [p](int cell) { return roundRobinOwner(cell, p); };

  // 4+5: project + exchange rounds per layer (communication phase).
  // exchangeByCell charges serialization/deserialization CPU internally;
  // the clock deltas accumulated per round therefore cover buffer
  // management + transfer, the paper's definition of communication time.
  // Received records accumulate into per-layer CellStores: resident when
  // the budget is unbounded, cell-sorted spill segments otherwise.
  const SpillChargeFn spillCharge = [&spiller](std::uint64_t bytes, bool isWrite) {
    spiller.charge(bytes, isWrite);
  };
  // Two-layer runs split the refine budget between the layer stores so
  // the reported peak (their sum) stays within the configured bound.
  const std::uint64_t storeBudget =
      (s != nullptr && sc.memoryBudget > 0) ? std::max<std::uint64_t>(sc.memoryBudget / 2, 1)
                                            : sc.memoryBudget;
  CellStore ownedR(&spill, "own_r", storeBudget, 0, spillCharge);
  CellStore ownedS(&spill, "own_s", storeBudget, 0, spillCharge);
  streamLayer(comm, stageR, ownedR, grid, locator ? &*locator : nullptr, owner, cfg, stats);
  if (s != nullptr) {
    streamLayer(comm, stageS, ownedS, grid, locator ? &*locator : nullptr, owner, cfg, stats);
  }
  ownedR.finalize();
  ownedS.finalize();
  stats.localR = ownedR.records();
  stats.localS = ownedS.records();

  // 5b: skew-aware owned-cell rebalancing. Every rank reduces the global
  // per-cell loads, repeats the same deterministic LPT assignment, and
  // ships leaving cells point-to-point as checksummed shard blobs.
  if (cfg.rebalanceCells && p > 1) {
    const double t0 = comm.clock().now();
    const double spillBefore = stats.phases.spill;
    stats.balance.ownedRecordsBefore = ownedR.records() + ownedS.records();
    std::vector<std::uint64_t> loads(static_cast<std::size_t>(grid.cellCount()), 0);
    ownedR.accumulateCellLoads(loads);
    ownedS.accumulateCellLoads(loads);
    std::vector<std::uint64_t> global(loads.size(), 0);
    comm.allreduce(loads.data(), global.data(), static_cast<int>(loads.size()),
                   mpi::Datatype::uint64(), mpi::Op::sum());
    stats.cellOwner = lptAssignCells(global, p);
    for (int c = 0; c < grid.cellCount(); ++c) {
      if (stats.cellOwner[static_cast<std::size_t>(c)] != roundRobinOwner(c, p)) {
        stats.balance.cellsMoved += 1;
      }
    }

    const auto migrateLayer = [&](CellStore& store) {
      std::vector<geom::GeometryBatch> outgoing(static_cast<std::size_t>(p));
      for (const int cell : store.cells()) {
        const int dst = stats.cellOwner[static_cast<std::size_t>(cell)];
        if (dst == comm.rank()) continue;
        outgoing[static_cast<std::size_t>(dst)].splice(store.extractCell(cell));
      }
      geom::GeometryBatch got = migrateShards(comm, std::move(outgoing), cfg.migrationBlobBytes,
                                              &stats.balance.transport);
      store.addMigrated(std::move(got));
    };
    migrateLayer(ownedR);
    if (s != nullptr) migrateLayer(ownedS);

    stats.balance.ownedRecordsAfter = ownedR.records() + ownedS.records();
    // Shard reloads during cell extraction charged themselves to the
    // spill phase; subtract them so total() counts the time once.
    stats.phases.migrate += (comm.clock().now() - t0) - (stats.phases.spill - spillBefore);
    stats.phases.migrateBytes = stats.balance.transport.bytesSent;
    stats.phases.migrateRounds = stats.balance.transport.blobsSent;
  }

  // 6: cell-major refine. Owned cells are visited in ascending cell-id
  // order; each cell's two record collections are served by the stores —
  // zero-copy spans into the owned batch in the resident regime, a
  // bounded external merge over cell-sorted shards in the streaming
  // regime, where the task also adopts the records cell by cell.
  const std::uint64_t reloadBase = ownedR.reloadBytes() + ownedS.reloadBytes();
  {
    mpi::CpuCharge charge(comm);
    const bool streamingRefine = ownedR.streaming();
    const std::vector<int> cells = mergeCellLists(ownedR.cells(), ownedS.cells());
    stats.cellsOwned = cells.size();
    for (const int cell : cells) {
      const geom::BatchSpan spanR = ownedR.cellSpan(cell);
      const geom::BatchSpan spanS = ownedS.cellSpan(cell);
      task.refineCellBatch(grid, cell, spanR, spanS);
      stats.refinePeakBytes =
          std::max(stats.refinePeakBytes, ownedR.trackedBytes() + ownedS.trackedBytes());
      if (streamingRefine) {
        // Per-cell adoption: the scratch batches the spans were built over
        // move to the task, so indices it captured stay valid.
        task.adoptBatches(ownedR.takeCellBatch(), ownedS.takeCellBatch());
      }
    }
    if (!streamingRefine) {
      // Whole-run adoption, as in the one-shot pipeline (records migrated
      // away by rebalancing are kNoCell-tombstoned in the batch).
      task.adoptBatches(ownedR.takeResidentBatch(), ownedS.takeResidentBatch());
    }
    stats.phases.compute += charge.stop();
  }
  stats.refinePeakBytes = std::max({stats.refinePeakBytes, ownedR.peakBytes(), ownedS.peakBytes()});
  // Only the refine loop's reloads; migration-extraction reloads are
  // priced in the spill phase and counted in FrameworkStats::spill.
  stats.phases.refineSpillBytes = ownedR.reloadBytes() + ownedS.reloadBytes() - reloadBase;

  ownedR.releaseBlobs();
  ownedS.releaseBlobs();
  stats.spill = spill.stats();
  spill.clear();
  return stats;
}

}  // namespace mvio::core
