#pragma once
// Cell-major owned-record store (DESIGN.md §8).
//
// The streaming pipeline's exchange rounds deliver a rank's owned records
// in arrival order, but the refine phase consumes them cell by cell. The
// CellStore is the structure between the two: rounds add() batches as
// they arrive, and after finalize() the store serves the records of one
// cell at a time, in ascending cell-id order, without ever holding the
// whole owned set resident.
//
// Two regimes, selected by StreamConfig::memoryBudget:
//
//  * Resident (budget 0 / unbounded): arrivals splice into one batch;
//    finalize() builds per-cell record-id lists over it. cellSpan() is a
//    zero-copy view into the batch, and the whole batch is handed to the
//    task once at the end (takeResidentBatch) — the classic path.
//
//  * Streaming (budget set): whenever the accumulating segment exceeds
//    the budget — and at finalize(), unless the tail fits half the
//    budget and simply stays resident — the segment's records are
//    stably sorted by cell id and written out as a run of BatchShards of
//    bounded encoded size (a cell larger than the bound spans shards).
//    Only a small directory (per shard: cell runs and record counts)
//    stays in memory. cellSpan() then performs an external merge: for the
//    requested cell it loads exactly the shards whose cell range covers
//    it, copies that cell's records (and the tail's) into a scratch
//    batch, and evicts loaded shards once the ascending iteration passes
//    them (or earlier under budget pressure) — peak refine memory is the
//    merge window plus one cell, not the owned-batch size.
//
// extractCell() removes a cell's records (the shard-migration path uses
// it to ship leaving cells), and addMigrated() appends records received
// from peers as one more cell-sorted segment. The store tracks its spill
// traffic and its peak resident bytes so FrameworkStats can report — and
// tests can assert — the refine-phase memory bound.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "geom/geometry_batch.hpp"
#include "pfs/spill_store.hpp"

namespace mvio::core {

/// Charges one spill transfer to the rank's clock and phase breakdown
/// (bytes, isWrite). Supplied by the framework, which owns both.
using SpillChargeFn = std::function<void(std::uint64_t, bool)>;

class CellStore {
 public:
  /// `memoryBudget` 0 = resident regime. In the streaming regime segments
  /// are split into shards of at most `shardBytes` encoded bytes
  /// (0 = budget/4) so the merge window loads small pieces.
  CellStore(pfs::SpillStore* store, std::string base, std::uint64_t memoryBudget,
            std::uint64_t shardBytes, SpillChargeFn charge);

  // ---- Accumulation (exchange rounds) ---------------------------------
  /// Splice one round's received records; may flush a cell-sorted segment.
  void add(geom::GeometryBatch&& roundBatch);
  /// Close accumulation; the store becomes cell-readable.
  void finalize();

  // ---- Introspection ---------------------------------------------------
  [[nodiscard]] bool streaming() const { return budget_ != 0; }
  [[nodiscard]] std::uint64_t records() const { return records_; }
  /// Ascending distinct cell ids with at least one record.
  [[nodiscard]] std::vector<int> cells() const;
  /// loads[cell] += record count, for every cell present (skew measurement;
  /// `loads` must span the grid).
  void accumulateCellLoads(std::vector<std::uint64_t>& loads) const;
  /// Bytes currently resident for refine service: merge window + scratch
  /// (streaming) or the owned batch (resident).
  [[nodiscard]] std::uint64_t trackedBytes() const;
  [[nodiscard]] std::uint64_t peakBytes() const { return peakBytes_; }
  /// Shard bytes reloaded by cellSpan/extractCell (refine-side traffic).
  [[nodiscard]] std::uint64_t reloadBytes() const { return reloadBytes_; }

  // ---- Cell-major access (after finalize) ------------------------------
  /// The records of `cell` as a span. Resident: a view into the owned
  /// batch. Streaming: assembled into an internal scratch batch via the
  /// external merge; the span is valid until the next cellSpan /
  /// extractCell / takeCellBatch call. Intended to be called with
  /// ascending cells (any order is correct; ascending keeps the merge
  /// window warm).
  geom::BatchSpan cellSpan(int cell);
  /// Streaming regime: hand over the scratch batch assembled by the last
  /// cellSpan() (the per-cell adoption unit).
  [[nodiscard]] geom::GeometryBatch takeCellBatch();
  /// Streaming regime: assemble `cell`'s records straight into an owned,
  /// self-contained batch — cellSpan() + takeCellBatch() without the
  /// scratch index build. The parallel-refine group loader uses it to
  /// stage a bounded group of cells that pool workers then refine while
  /// the store (which is not thread-safe) stays untouched (DESIGN.md §10).
  [[nodiscard]] geom::GeometryBatch takeCellAssembled(int cell);
  /// Bytes the caller holds resident outside the store (the parallel
  /// group loader's staged cell batches). Counted like the scratch batch
  /// in the merge-window eviction budget, so the window shrinks as the
  /// group grows and window + group stays within the memory bound.
  void setRefinePressure(std::uint64_t bytes) { externalBytes_ = bytes; }
  /// Remove `cell` from the store and return its records (migration).
  /// Resident: the records are tombstoned with kNoCell in the owned batch
  /// so a later takeResidentBatch() cannot leak them to the task.
  [[nodiscard]] geom::GeometryBatch extractCell(int cell);
  /// Append records received from peers (cell tags intact). Streaming:
  /// flushed immediately as one more cell-sorted segment.
  void addMigrated(geom::GeometryBatch&& batch);
  /// Resident regime: the whole owned batch, for whole-run adoption.
  [[nodiscard]] geom::GeometryBatch takeResidentBatch();

  /// Drop every shard blob this store wrote from the SpillStore.
  void releaseBlobs();

 private:
  /// One maximal run of same-cell records inside a shard.
  struct ShardRun {
    int cell = 0;
    std::uint32_t records = 0;
    bool dead = false;  ///< extracted (migrated away); skip on reload
  };
  /// Directory entry for one spilled shard (cell-sorted records).
  struct ShardRef {
    std::string name;
    int firstCell = 0;
    int lastCell = 0;
    std::uint64_t encodedBytes = 0;
    std::vector<ShardRun> runs;
  };
  struct LoadedShard {
    geom::GeometryBatch batch;
    std::uint64_t bytes = 0;    ///< batch.memoryBytes() at load
    std::uint64_t lastUse = 0;  ///< eviction clock
  };

  /// Sort `b`'s records by cell and write them out as one segment of
  /// bounded-size shards (directory kept in memory).
  void flushSegment(const geom::GeometryBatch& b);
  /// Copy `cell`'s records from every covering shard into `out`; marks the
  /// runs dead when `extract`.
  void assembleCell(int cell, geom::GeometryBatch& out, bool extract);
  geom::GeometryBatch& loadShard(std::size_t seg, std::size_t idx, int currentCell);
  void evictShards(int currentCell, std::uint64_t incomingBytes);
  void notePeak();

  pfs::SpillStore* store_;
  std::string base_;
  std::uint64_t budget_;
  std::uint64_t shardBytes_;
  SpillChargeFn charge_;

  bool finalized_ = false;
  std::uint64_t records_ = 0;
  std::uint64_t reloadBytes_ = 0;
  std::uint64_t peakBytes_ = 0;

  // Accumulating / resident state. After finalize, resident_ holds the
  // whole owned set (resident regime) or the under-half-budget tail
  // segment (streaming regime); cellIndex_ maps its records per cell.
  geom::GeometryBatch resident_;
  std::map<int, std::vector<std::uint32_t>> cellIndex_;

  // Streaming state.
  std::vector<std::vector<ShardRef>> segments_;
  std::unordered_map<std::uint64_t, LoadedShard> loaded_;  ///< key: seg<<32|idx
  std::uint64_t loadedBytes_ = 0;
  std::uint64_t externalBytes_ = 0;  ///< caller-held bytes (setRefinePressure)
  std::uint64_t useClock_ = 0;
  geom::GeometryBatch scratch_;
  std::vector<std::uint32_t> scratchIdx_;
  std::size_t shardSeq_ = 0;  ///< unique shard-name counter
};

}  // namespace mvio::core
