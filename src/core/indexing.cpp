#include "core/indexing.hpp"

#include <memory>

#include "geom/batch_shard.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace mvio::core {

namespace {

constexpr std::uint32_t kManifestMagic = 0x4D53564Du;  // "MVSM" little-endian
// v2 appends the encoded partition map (length-prefixed, "" = uniform)
// between the grid shape and the trailing checksum.
constexpr std::uint32_t kManifestVersion = 2;

using util::putScalar;
using util::readScalar;

}  // namespace

void DistributedIndex::addBatch(geom::GeometryBatch&& b) {
  const std::size_t base = batch_.size();
  batch_.splice(std::move(b));
  for (std::size_t i = base; i < batch_.size(); ++i) {
    const int cell = batch_.cell(i);
    if (cell == geom::GeometryBatch::kNoCell) continue;
    CellIndex& ci = cells_[cell];
    ci.records.push_back(static_cast<std::uint32_t>(i));
    ci.stale = true;
    localGeometries_ += 1;
  }
}

void DistributedIndex::buildTrees() const {
  for (const auto& [cell, ci] : cells_) {
    if (!ci.stale) continue;
    ci.rtree = geom::RTree(fanout_);
    ci.rtree.bulkLoad(geom::BatchSpan(&batch_, ci.records.data(), ci.records.size()));
    ci.stale = false;
  }
}

std::uint64_t DistributedIndex::queryCount(const geom::Envelope& queryBox) const {
  std::uint64_t n = 0;
  query(queryBox, [&](std::size_t) { ++n; });
  return n;
}

void DistributedIndex::query(const geom::Envelope& queryBox,
                             const std::function<void(std::size_t)>& fn) const {
  if (queryBox.isNull()) return;
  for (const auto& [cell, ci] : cells_) {
    if (ci.stale) {
      // Lazy re-bulk-load: streaming adoption appended ids since the tree
      // was last packed (or it was never packed at all).
      ci.rtree = geom::RTree(fanout_);
      ci.rtree.bulkLoad(geom::BatchSpan(&batch_, ci.records.data(), ci.records.size()));
      ci.stale = false;
    }
    ci.rtree.visit(queryBox, [&](std::uint64_t k) {
      const std::size_t id = ci.records[static_cast<std::size_t>(k)];
      const geom::Envelope& env = batch_.envelope(id);
      // Reference-point deduplication across replicated copies. Cell ids
      // are partition cells, so the reference point resolves through the
      // map (== the grid lookup for uniform runs).
      const geom::Coord ref{std::max(env.minX(), queryBox.minX()),
                            std::max(env.minY(), queryBox.minY())};
      const int refCell = map_.isUniform() ? grid_.cellOfPoint(ref) : map_.cellOfPoint(ref);
      if (refCell != cell) return;
      // Exact refine straight on the batch record — no materialization.
      if (!geom::recordIntersectsBox(batch_, id, queryBox)) return;
      fn(id);
    });
  }
}

void DistributedIndex::saveShards(pfs::SpillStore& store, const std::string& base,
                                  std::uint64_t maxShardBytes) const {
  // Split the adopted batch into contiguous record ranges whose encoded
  // size stays under the bound (geom::forEachShardRange).
  std::uint64_t shards = 0;
  geom::forEachShardRange(batch_, maxShardBytes,
                          [&](std::size_t lo, std::size_t hi, std::uint64_t bytes) {
                            std::string blob;
                            blob.reserve(static_cast<std::size_t>(bytes));
                            geom::encodeShard(batch_, lo, hi, blob);
                            store.put(base + "." + std::to_string(shards), std::move(blob));
                            ++shards;
                          });

  std::string manifest;
  putScalar<std::uint32_t>(manifest, kManifestMagic);
  putScalar<std::uint32_t>(manifest, kManifestVersion);
  putScalar<std::uint64_t>(manifest, shards);
  putScalar<std::uint64_t>(manifest, localGeometries_);
  putScalar<std::uint64_t>(manifest, fanout_);
  const geom::Envelope& gb = grid_.bounds();
  putScalar<std::uint8_t>(manifest, gb.isNull() ? 1 : 0);
  putScalar<double>(manifest, gb.isNull() ? 0.0 : gb.minX());
  putScalar<double>(manifest, gb.isNull() ? 0.0 : gb.minY());
  putScalar<double>(manifest, gb.isNull() ? 0.0 : gb.maxX());
  putScalar<double>(manifest, gb.isNull() ? 0.0 : gb.maxY());
  putScalar<std::int32_t>(manifest, grid_.cellsX());
  putScalar<std::int32_t>(manifest, grid_.cellsY());
  const std::string mapBlob = map_.isUniform() ? std::string() : encodePartitionMap(map_);
  putScalar<std::uint32_t>(manifest, static_cast<std::uint32_t>(mapBlob.size()));
  util::putBytes(manifest, mapBlob.data(), mapBlob.size());
  // Checksum-before-trust, like the shards: covers every preceding byte.
  putScalar<std::uint64_t>(manifest, util::fnv1a(manifest.data(), manifest.size()));
  store.put(base + ".manifest", std::move(manifest));
}

DistributedIndex DistributedIndex::loadShards(pfs::SpillStore& store, const std::string& base,
                                              std::size_t rtreeFanout,
                                              const std::vector<int>* cellOwner, int selfRank) {
  const std::string manifestName = base + ".manifest";
  MVIO_CHECK(store.contains(manifestName), "index shards: missing manifest " + manifestName);
  const std::string m = store.fetch(manifestName);
  // Fixed prefix through the grid shape, then the length-prefixed map
  // blob and the trailing checksum.
  constexpr std::size_t kFixedBytes = 4 + 4 + 8 + 8 + 8 + 1 + 4 * 8 + 4 + 4;
  MVIO_CHECK(m.size() >= kFixedBytes + 4 + 8, "index shards: truncated manifest");
  const auto mapBytes = static_cast<std::size_t>(readScalar<std::uint32_t>(m.data() + kFixedBytes));
  MVIO_CHECK(m.size() == kFixedBytes + 4 + mapBytes + 8, "index shards: truncated manifest");
  MVIO_CHECK(util::fnv1a(m.data(), m.size() - 8) ==
                 readScalar<std::uint64_t>(m.data() + m.size() - 8),
             "index shards: corrupted manifest (checksum mismatch)");
  MVIO_CHECK(readScalar<std::uint32_t>(m.data()) == kManifestMagic, "index shards: bad manifest magic");
  MVIO_CHECK(readScalar<std::uint32_t>(m.data() + 4) == kManifestVersion,
             "index shards: unsupported manifest version");
  const auto shards = readScalar<std::uint64_t>(m.data() + 8);
  const auto expectedRecords = readScalar<std::uint64_t>(m.data() + 16);
  const auto fanout = static_cast<std::size_t>(readScalar<std::uint64_t>(m.data() + 24));
  const bool nullGrid = readScalar<std::uint8_t>(m.data() + 32) != 0;
  const double minX = readScalar<double>(m.data() + 33);
  const double minY = readScalar<double>(m.data() + 41);
  const double maxX = readScalar<double>(m.data() + 49);
  const double maxY = readScalar<double>(m.data() + 57);
  const auto cellsX = readScalar<std::int32_t>(m.data() + 65);
  const auto cellsY = readScalar<std::int32_t>(m.data() + 69);

  DistributedIndex index;
  index.fanout_ = rtreeFanout != 0 ? rtreeFanout : fanout;
  if (!nullGrid) index.grid_ = GridSpec(geom::Envelope(minX, minY, maxX, maxY), cellsX, cellsY);
  if (mapBytes > 0) {
    std::optional<PartitionMap> decoded =
        decodePartitionMap(std::string_view(m.data() + kFixedBytes + 4, mapBytes));
    MVIO_CHECK(decoded.has_value(), "index shards: corrupt partition map in manifest");
    index.map_ = std::move(*decoded);
  }

  for (std::uint64_t k = 0; k < shards; ++k) {
    const std::string name = base + "." + std::to_string(k);
    MVIO_CHECK(store.contains(name), "index shards: missing shard " + name);
    geom::GeometryBatch b;
    geom::decodeShard(store.fetch(name), b);
    if (cellOwner != nullptr) validateCellOwnership(b, *cellOwner, selfRank, "index shards");
    index.addBatch(std::move(b));
  }
  MVIO_CHECK(index.localGeometries_ == expectedRecords,
             "index shards: record count does not match the manifest");
  return index;
}

DistributedIndex DistributedIndex::fromBatch(geom::GeometryBatch&& batch, const GridSpec& grid,
                                             std::size_t rtreeFanout) {
  DistributedIndex index;
  index.grid_ = grid;
  index.fanout_ = rtreeFanout;
  index.addBatch(std::move(batch));
  index.buildTrees();
  return index;
}

DistributedIndex buildDistributedIndex(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& data,
                                       const IndexingConfig& cfg, IndexingStats* stats) {
  DistributedIndex index;
  index.fanout_ = cfg.rtreeFanout;

  /// RefineTask that adopts the rank's post-exchange batch into the index
  /// through the appendable addBatch hook. No geometry is copied beyond
  /// the adoption splice, and no R-tree is packed per round — trees build
  /// once, below, after the last batch arrives.
  struct BuildTask final : RefineTask {
    DistributedIndex* index;

    void refineCellBatch(const GridSpec& /*grid*/, int /*cell*/, const geom::BatchSpan& /*r*/,
                         const geom::BatchSpan& /*s*/) override {
      // Grouping happens in addBatch from the adopted records' cell tags.
    }

    void adoptBatches(geom::GeometryBatch&& r, geom::GeometryBatch&& /*s*/) override {
      index->addBatch(std::move(r));
    }

    std::unique_ptr<RefineTask> makeWorker() override {
      // Refine is a no-op for index building (grouping happens at
      // adoption, which stays on the main task), so workers are stateless
      // shells that keep the threaded pipeline uniform.
      auto w = std::make_unique<BuildTask>();
      w->index = nullptr;
      return w;
    }

    void mergeWorker(RefineTask& /*worker*/) override {}
  };

  BuildTask task;
  task.index = &index;
  const FrameworkStats fw = runFilterRefine(comm, volume, data, nullptr, cfg.framework, task);
  index.grid_ = fw.grid;
  index.map_ = fw.partition;
  if (stats != nullptr) {
    stats->phases = fw.phases;
    stats->spill = fw.spill;
    stats->balance = fw.balance;
    stats->recovery = fw.recovery;
    stats->refinePeakBytes = fw.refinePeakBytes;
    stats->cellsOwned = fw.cellsOwned;
    stats->grid = fw.grid;
  }
  // A dead rank adopted nothing and joins no further collective: its
  // (empty) index is returned as-is.
  if (fw.recovery.died) return index;
  mpi::Comm active = fw.activeComm ? *fw.activeComm : comm;

  // Pack the per-cell R-trees now (rather than at first query) so the
  // build phase of the figure benches keeps pricing the whole build.
  mpi::CpuCharge charge(comm);
  index.buildTrees();
  const double treeSeconds = charge.stop();

  if (stats != nullptr) {
    stats->phases.compute += treeSeconds;
    stats->globalGeometries = active.allreduceSumU64(index.localGeometries());
  }
  return index;
}

}  // namespace mvio::core
