#include "core/indexing.hpp"

#include "util/error.hpp"

namespace mvio::core {

namespace {

/// RefineTask that bulk-loads an R-tree per cell and materializes the
/// cell's batch records into the DistributedIndex (the index outlives the
/// pipeline's batches, so this is where the per-Geometry copies belong).
/// R-tree entries come straight from the arena envelopes.
struct BuildTask final : RefineTask {
  std::unordered_map<int, DistributedIndex::CellIndex>* cells;
  std::size_t fanout;
  std::uint64_t total = 0;

  BuildTask(std::unordered_map<int, DistributedIndex::CellIndex>* cellsOut, std::size_t rtreeFanout)
      : cells(cellsOut), fanout(rtreeFanout) {}

  void refineCellBatch(const GridSpec& /*grid*/, int cell, const geom::BatchSpan& r,
                       const geom::BatchSpan& /*s*/) override {
    if (r.empty()) return;
    DistributedIndex::CellIndex ci;
    r.materializeAll(ci.geometries);
    std::vector<geom::RTree::Entry> entries;
    entries.reserve(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      entries.push_back({r.envelope(i), static_cast<std::uint64_t>(i)});
    }
    ci.rtree = geom::RTree(fanout);
    ci.rtree.bulkLoad(std::move(entries));
    total += ci.geometries.size();
    cells->emplace(cell, std::move(ci));
  }
};

}  // namespace

std::uint64_t DistributedIndex::queryCount(const geom::Envelope& queryBox) const {
  std::uint64_t n = 0;
  query(queryBox, [&](const geom::Geometry&) { ++n; });
  return n;
}

void DistributedIndex::query(const geom::Envelope& queryBox,
                             const std::function<void(const geom::Geometry&)>& fn) const {
  if (queryBox.isNull()) return;
  const geom::Geometry queryGeom = geom::Geometry::box(queryBox);
  for (const auto& [cell, ci] : cells_) {
    ci.rtree.query(queryBox, [&](std::uint64_t id) {
      const geom::Geometry& g = ci.geometries[static_cast<std::size_t>(id)];
      // Reference-point deduplication across replicated copies.
      const geom::Coord ref{std::max(g.envelope().minX(), queryBox.minX()),
                            std::max(g.envelope().minY(), queryBox.minY())};
      if (grid_.cellOfPoint(ref) != cell) return;
      if (!geom::intersects(queryGeom, g)) return;
      fn(g);
    });
  }
}

DistributedIndex buildDistributedIndex(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& data,
                                       const IndexingConfig& cfg, IndexingStats* stats) {
  DistributedIndex index;
  BuildTask task(&index.cells_, cfg.rtreeFanout);
  const FrameworkStats fw = runFilterRefine(comm, volume, data, nullptr, cfg.framework, task);
  index.grid_ = fw.grid;
  index.localGeometries_ = task.total;

  if (stats != nullptr) {
    stats->phases = fw.phases;
    stats->cellsOwned = fw.cellsOwned;
    stats->grid = fw.grid;
    stats->globalGeometries = comm.allreduceSumU64(task.total);
  }
  return index;
}

}  // namespace mvio::core
