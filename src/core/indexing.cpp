#include "core/indexing.hpp"

#include "util/error.hpp"

namespace mvio::core {

namespace {

/// RefineTask that bulk-loads an R-tree per cell and moves the geometries
/// into the DistributedIndex.
struct BuildTask final : RefineTask {
  DistributedIndex::CellIndex* current = nullptr;
  std::unordered_map<int, DistributedIndex::CellIndex>* cells;
  std::size_t fanout;
  std::uint64_t total = 0;

  BuildTask(std::unordered_map<int, DistributedIndex::CellIndex>* cellsOut, std::size_t rtreeFanout)
      : cells(cellsOut), fanout(rtreeFanout) {}

  void refineCell(const GridSpec& /*grid*/, int cell, std::vector<geom::Geometry>& r,
                  std::vector<geom::Geometry>& /*s*/) override {
    if (r.empty()) return;
    DistributedIndex::CellIndex ci;
    ci.geometries = std::move(r);
    std::vector<geom::RTree::Entry> entries;
    entries.reserve(ci.geometries.size());
    for (std::size_t i = 0; i < ci.geometries.size(); ++i) {
      entries.push_back({ci.geometries[i].envelope(), static_cast<std::uint64_t>(i)});
    }
    ci.rtree = geom::RTree(fanout);
    ci.rtree.bulkLoad(std::move(entries));
    total += ci.geometries.size();
    cells->emplace(cell, std::move(ci));
  }
};

}  // namespace

std::uint64_t DistributedIndex::queryCount(const geom::Envelope& queryBox) const {
  std::uint64_t n = 0;
  query(queryBox, [&](const geom::Geometry&) { ++n; });
  return n;
}

void DistributedIndex::query(const geom::Envelope& queryBox,
                             const std::function<void(const geom::Geometry&)>& fn) const {
  if (queryBox.isNull()) return;
  const geom::Geometry queryGeom = geom::Geometry::box(queryBox);
  for (const auto& [cell, ci] : cells_) {
    ci.rtree.query(queryBox, [&](std::uint64_t id) {
      const geom::Geometry& g = ci.geometries[static_cast<std::size_t>(id)];
      // Reference-point deduplication across replicated copies.
      const geom::Coord ref{std::max(g.envelope().minX(), queryBox.minX()),
                            std::max(g.envelope().minY(), queryBox.minY())};
      if (grid_.cellOfPoint(ref) != cell) return;
      if (!geom::intersects(queryGeom, g)) return;
      fn(g);
    });
  }
}

DistributedIndex buildDistributedIndex(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& data,
                                       const IndexingConfig& cfg, IndexingStats* stats) {
  DistributedIndex index;
  BuildTask task(&index.cells_, cfg.rtreeFanout);
  const FrameworkStats fw = runFilterRefine(comm, volume, data, nullptr, cfg.framework, task);
  index.grid_ = fw.grid;
  index.localGeometries_ = task.total;

  if (stats != nullptr) {
    stats->phases = fw.phases;
    stats->cellsOwned = fw.cellsOwned;
    stats->grid = fw.grid;
    stats->globalGeometries = comm.allreduceSumU64(task.total);
  }
  return index;
}

}  // namespace mvio::core
