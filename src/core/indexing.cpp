#include "core/indexing.hpp"

#include "util/error.hpp"

namespace mvio::core {

void DistributedIndex::addCell(int cell, const geom::BatchSpan& records, std::size_t fanout) {
  // The span's index buffer is caller-owned (the framework's per-cell
  // lists); copy the ids so they survive the pipeline.
  std::vector<std::uint32_t> ids;
  ids.reserve(records.size());
  for (std::size_t k = 0; k < records.size(); ++k) {
    ids.push_back(static_cast<std::uint32_t>(records.recordIndex(k)));
  }
  addCell(cell, std::move(ids), records.batch(), fanout);
}

void DistributedIndex::addCell(int cell, std::vector<std::uint32_t>&& ids,
                               const geom::GeometryBatch& source, std::size_t fanout) {
  CellIndex ci;
  ci.records = std::move(ids);
  ci.rtree = geom::RTree(fanout);
  ci.rtree.bulkLoad(geom::BatchSpan(&source, ci.records.data(), ci.records.size()));
  localGeometries_ += ci.records.size();
  cells_.emplace(cell, std::move(ci));
}

std::uint64_t DistributedIndex::queryCount(const geom::Envelope& queryBox) const {
  std::uint64_t n = 0;
  query(queryBox, [&](std::size_t) { ++n; });
  return n;
}

void DistributedIndex::query(const geom::Envelope& queryBox,
                             const std::function<void(std::size_t)>& fn) const {
  if (queryBox.isNull()) return;
  for (const auto& [cell, ci] : cells_) {
    ci.rtree.visit(queryBox, [&](std::uint64_t k) {
      const std::size_t id = ci.records[static_cast<std::size_t>(k)];
      const geom::Envelope& env = batch_.envelope(id);
      // Reference-point deduplication across replicated copies.
      const geom::Coord ref{std::max(env.minX(), queryBox.minX()),
                            std::max(env.minY(), queryBox.minY())};
      if (grid_.cellOfPoint(ref) != cell) return;
      // Exact refine straight on the batch record — no materialization.
      if (!geom::recordIntersectsBox(batch_, id, queryBox)) return;
      fn(id);
    });
  }
}

DistributedIndex DistributedIndex::fromBatch(geom::GeometryBatch&& batch, const GridSpec& grid,
                                             std::size_t rtreeFanout) {
  DistributedIndex index;
  index.grid_ = grid;
  std::unordered_map<int, std::vector<std::uint32_t>> byCell;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch.cell(i) == geom::GeometryBatch::kNoCell) continue;
    byCell[batch.cell(i)].push_back(static_cast<std::uint32_t>(i));
  }
  for (auto& [cell, ids] : byCell) {
    index.addCell(cell, std::move(ids), batch, rtreeFanout);
  }
  index.batch_ = std::move(batch);
  return index;
}

DistributedIndex buildDistributedIndex(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& data,
                                       const IndexingConfig& cfg, IndexingStats* stats) {
  DistributedIndex index;

  /// RefineTask that bulk-loads an R-tree per cell from the arena-resident
  /// MBRs and records each cell's record-id list. No geometry is copied:
  /// after the refine loop the task adopts the rank's batch wholesale, and
  /// the recorded ids stay valid inside the moved arenas. (Local class:
  /// it shares this friend function's access to the index internals.)
  struct BuildTask final : RefineTask {
    DistributedIndex* index;
    std::size_t fanout;

    void refineCellBatch(const GridSpec& /*grid*/, int cell, const geom::BatchSpan& r,
                         const geom::BatchSpan& /*s*/) override {
      if (r.empty()) return;
      index->addCell(cell, r, fanout);
    }

    void adoptBatches(geom::GeometryBatch&& r, geom::GeometryBatch&& /*s*/) override {
      index->batch_ = std::move(r);
    }
  };

  BuildTask task;
  task.index = &index;
  task.fanout = cfg.rtreeFanout;
  const FrameworkStats fw = runFilterRefine(comm, volume, data, nullptr, cfg.framework, task);
  index.grid_ = fw.grid;

  if (stats != nullptr) {
    stats->phases = fw.phases;
    stats->cellsOwned = fw.cellsOwned;
    stats->grid = fw.grid;
    stats->globalGeometries = comm.allreduceSumU64(index.localGeometries());
  }
  return index;
}

}  // namespace mvio::core
