#pragma once
// Distributed spatial join (paper §2 "Spatial Join", §5.2 evaluation).
//
// Given layers R and S and a predicate θ, returns all pairs (r, s) with
// θ(r, s) true. Filter: per-cell R-tree over R's MBRs queried with each
// s's MBR. Refine: exact geometry predicate. Duplicate avoidance uses the
// reference-point rule: a pair found in a cell is reported only when the
// lower-left corner of the MBR intersection falls inside that cell —
// replicated geometries therefore produce each result exactly once
// ("duplicate avoidance is carried out later in the refinement phase").

#include <cstdint>
#include <vector>

#include "core/framework.hpp"

namespace mvio::core {

enum class JoinPredicate {
  kIntersects,  ///< shares any point (the paper's example operation)
  kContains,    ///< r contains s
};

struct JoinConfig {
  FrameworkConfig framework;
  JoinPredicate predicate = JoinPredicate::kIntersects;
  std::size_t rtreeFanout = 16;
};

/// One result pair, identified by content hashes of the geometries (stable
/// across ranks and runs; used for validation against the serial join).
struct JoinPair {
  std::uint64_t keyR = 0;
  std::uint64_t keyS = 0;

  friend bool operator==(const JoinPair& a, const JoinPair& b) {
    return a.keyR == b.keyR && a.keyS == b.keyS;
  }
  friend bool operator<(const JoinPair& a, const JoinPair& b) {
    return a.keyR != b.keyR ? a.keyR < b.keyR : a.keyS < b.keyS;
  }
};

struct JoinStats {
  PhaseBreakdown phases;             ///< this rank's breakdown
  RebalanceStats balance;            ///< owned-cell migration volumes (rebalanceCells)
  RecoveryStats recovery;            ///< failure injection / recovery outcome
  PartitionPlan plan;                ///< pilot-pass cost-model prediction (adaptive schemes)
  std::uint64_t localPairs = 0;      ///< pairs this rank reported
  std::uint64_t globalPairs = 0;     ///< allreduced total
  std::uint64_t candidatePairs = 0;  ///< global filter-phase candidates
  std::uint64_t cellsOwned = 0;
  std::uint64_t ownedRecords = 0;    ///< geometries this rank refined (post-exchange, both layers)
  GridSpec grid;
};

/// Content hash used for JoinPair keys (FNV-1a over the WKB encoding).
std::uint64_t geometryKey(const geom::Geometry& g);

/// Batch-native form: hashes record `i`'s WKB written straight from the
/// arenas into `scratch` (reused across calls, no Geometry materialized).
/// Identical to geometryKey(b.materialize(i)) by the wire-format
/// equivalence of writeWkbTo — tests/test_spill_stream.cpp asserts it.
std::uint64_t geometryKey(const geom::GeometryBatch& b, std::size_t i, std::string& scratch);

/// Run the distributed join. Collective. When `localResults` is non-null
/// it receives this rank's result pairs (for validation).
JoinStats spatialJoin(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                      const DatasetHandle& s, const JoinConfig& cfg,
                      std::vector<JoinPair>* localResults = nullptr);

/// Serial reference join over two in-memory collections (nested loop with
/// envelope prefilter). Used by tests and the correctness harness.
std::vector<JoinPair> serialJoin(const std::vector<geom::Geometry>& r,
                                 const std::vector<geom::Geometry>& s, JoinPredicate predicate);

}  // namespace mvio::core
