#pragma once
// Sample-based adaptive partitioning (DESIGN.md §13).
//
// The uniform grid is the root cause of the skew the rebalancer then
// pays migration traffic to clean up: hot cells overload the ranks that
// round-robin happens to hand them to. Following Aji et al. ("Effective
// Spatial Data Partitioning for Scalable Query Processing"), a cheap
// pilot pass samples ~1% of records during ingest, the samples are
// allgathered, and every rank deterministically builds the same
// variable-extent PartitionMap before the first exchange round:
//
//  * kQuadtree — an MX-CIF quadtree over the sample envelopes splits hot
//    regions until per-leaf sample load is near target; uniform cells
//    are grouped by the leaf containing their center.
//  * kHilbert — uniform cells are sorted by the Hilbert key of their
//    center and cut into contiguous, ~equal-weight key ranges.
//
// A partition cell is always a union of whole uniform-grid cells, so the
// refine phase can sub-bucket each partition cell back into its uniform
// members and run the existing per-cell tasks (duplicate-avoidance
// reference points, cell envelopes) unchanged — adaptive runs are
// bit-compatible with the uniform grid by construction.
//
// The map has a wire codec (magic + trailing FNV-1a, fuzzed like every
// other durable artifact) so epoch seals can carry it: recovery restores
// the sealed map and replays the chunk log through the identical
// projection.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/grid.hpp"
#include "geom/coord.hpp"
#include "geom/envelope.hpp"

namespace mvio::core {

enum class PartitionScheme : std::uint32_t { kUniform = 0, kQuadtree = 1, kHilbert = 2 };

[[nodiscard]] const char* partitionSchemeName(PartitionScheme scheme);

/// Partitioner knobs (FrameworkConfig::partition).
struct PartitionerConfig {
  PartitionScheme scheme = PartitionScheme::kUniform;
  /// Pilot pass: sample roughly this fraction of parsed records.
  double sampleRate = 0.01;
  /// Per-rank cap on pilot samples (bounds the allgather payload).
  std::uint32_t maxSamplesPerRank = 1u << 16;
  /// Partition cells to build (0 = 8 per rank, clamped to the grid).
  int targetCells = 0;
  /// Hilbert curve order for the range-split scheme.
  int curveOrder = 16;
};

/// Cell map of a run: the uniform grid plus an optional grouping of
/// uniform cells into variable-extent partition cells. The uniform case
/// keeps `group_` empty so every lookup stays the grid's branch-free
/// arithmetic plus one predictable emptiness test.
class PartitionMap {
 public:
  PartitionMap() = default;

  [[nodiscard]] static PartitionMap uniform(const GridSpec& grid);
  /// Adaptive map; `group[u]` is the partition cell of uniform cell `u`
  /// and must be a canonical relabeling: scanning u ascending, each new
  /// value is the next unused id (so ids are deterministic).
  [[nodiscard]] static PartitionMap grouped(PartitionScheme scheme, const GridSpec& grid,
                                            std::vector<std::int32_t> group, int partCount);

  [[nodiscard]] PartitionScheme scheme() const { return scheme_; }
  [[nodiscard]] const GridSpec& grid() const { return grid_; }
  [[nodiscard]] bool isUniform() const { return group_.empty(); }
  /// Partition cells (== grid cells for the uniform map).
  [[nodiscard]] int cellCount() const { return group_.empty() ? grid_.cellCount() : partCount_; }

  /// Partition cell of uniform cell `u`.
  [[nodiscard]] int groupOf(int u) const {
    return group_.empty() ? u : group_[static_cast<std::size_t>(u)];
  }

  /// Partition cell owning a point (the duplicate-avoidance reference
  /// lookup at partition granularity).
  [[nodiscard]] int cellOfPoint(const geom::Coord& c) const {
    const int u = grid_.cellOfPoint(c);
    return group_.empty() ? u : group_[static_cast<std::size_t>(u)];
  }

  /// Append every partition cell whose extent intersects `box`; the
  /// appended tail is sorted and deduped (same contract as CellLocator).
  void overlappingCells(const geom::Envelope& box, std::vector<int>& out) const;

  /// Translate uniform cell ids appended past `first` (e.g. a CellLocator
  /// result) into partition ids in place; sorts + dedupes the tail.
  void translateCells(std::vector<int>& cells, std::size_t first) const;

  friend bool operator==(const PartitionMap& a, const PartitionMap& b);
  friend bool operator!=(const PartitionMap& a, const PartitionMap& b) { return !(a == b); }

 private:
  PartitionScheme scheme_ = PartitionScheme::kUniform;
  GridSpec grid_;
  std::vector<std::int32_t> group_;  ///< empty = identity (uniform)
  int partCount_ = 0;
};

// ---- Wire codec -----------------------------------------------------------
// magic + version + scheme + grid bounds/shape + canonical group array +
// trailing FNV-1a. Embedded verbatim in epoch seals and index manifests.

[[nodiscard]] std::string encodePartitionMap(const PartitionMap& map);

/// Decode + validate (checksum, exact size, canonical grouping, finite
/// bounds). nullopt on any corruption — never throws, never loads a
/// structurally inconsistent map.
[[nodiscard]] std::optional<PartitionMap> decodePartitionMap(std::string_view blob);

// ---- Builder --------------------------------------------------------------

/// Deterministically build the configured map from the allgathered pilot
/// samples (identical on every rank by construction: same samples, same
/// arithmetic). Falls back to the uniform map when the scheme is uniform,
/// the sample set is empty, or the grid has a single cell.
[[nodiscard]] PartitionMap buildPartitionMap(const PartitionerConfig& cfg, const GridSpec& grid,
                                             const std::vector<geom::Envelope>& samples,
                                             int worldSize);

// ---- Cost model -----------------------------------------------------------
// Prices partition and rebalance decisions in seconds instead of raw load
// ratios: projected refine cost of the most-loaded rank plus migration
// bytes at the measured shard rate.

struct PartitionCostModel {
  double refineSecondsPerRecord = 3e-7;    ///< per-record filter+refine cost
  double migrateBytesPerSecond = 2.5e9;    ///< shard wire rate (SerializationCostModel)
  double migratePerGeometrySeconds = 3e-7; ///< per-record pack/unpack cost
};

/// The pilot-pass prediction, published in FrameworkStats and checked by
/// bench_partition against the measured outcome.
struct PartitionPlan {
  PartitionScheme scheme = PartitionScheme::kUniform;
  int cells = 0;              ///< partition cells in the built map
  std::uint64_t samples = 0;  ///< global pilot samples the plan is built from
  /// Sampled max-rank load share (max/mean over ranks), round-robin owners.
  double imbalanceUniform = 0.0;
  double imbalanceAdaptive = 0.0;
  /// Predicted end-state seconds for the most-loaded rank: uniform grid
  /// with an LPT rebalance pass (refine + migration) vs the adaptive map
  /// with round-robin owners (refine only).
  double predictedUniformSeconds = 0.0;
  double predictedAdaptiveSeconds = 0.0;
  /// Predicted migration bytes the uniform+LPT run pays.
  std::uint64_t predictedMigrationBytes = 0;
  PartitionScheme predictedWinner = PartitionScheme::kUniform;
  /// Relative separation of the two predictions; below ~0.1 the schemes
  /// are within the model's noise and either winner is defensible.
  double predictedMargin = 0.0;
};

/// Build the plan for `map` against the uniform baseline on the same
/// samples. `totalRecords` scales sampled loads to run size;
/// `bytesPerRecord` is the measured (or estimated) wire size.
[[nodiscard]] PartitionPlan planPartition(const PartitionMap& map,
                                          const std::vector<geom::Envelope>& samples,
                                          int worldSize, std::uint64_t totalRecords,
                                          double bytesPerRecord,
                                          const PartitionCostModel& model = {});

/// Price one rebalance proposal: refine seconds saved by moving from
/// owners `from` to `to` vs the wire seconds the move costs. `threshold`
/// (FrameworkConfig::rebalanceThreshold) scales the required payoff.
struct RebalanceDecision {
  double gainSeconds = 0.0;
  double migrateSeconds = 0.0;
  std::uint64_t migrateBytes = 0;
  bool worthIt = false;
};
[[nodiscard]] RebalanceDecision priceRebalance(const std::vector<std::uint64_t>& loads,
                                               const std::vector<int>& from,
                                               const std::vector<int>& to, int nprocs,
                                               double bytesPerRecord, double threshold,
                                               const PartitionCostModel& model = {});

}  // namespace mvio::core
