#include "core/file_partition.hpp"

#include <algorithm>
#include <cstring>

#include "core/format.hpp"
#include "util/error.hpp"

namespace mvio::core {

namespace {

/// MPI guarantees tags are valid at least up to 32767 (MPI_TAG_UB lower
/// bound). Iteration counts can exceed that on huge files with small
/// blocks, so ring-fragment tags wrap; send/recv stay matched because both
/// sides derive the tag from the same iteration index.
constexpr std::uint64_t kTagModulus = 32768;

/// Offset of the last `delim` in buf[0, len), or -1.
std::int64_t findLastDelim(const char* buf, std::uint64_t len, char delim) {
#if defined(__GLIBC__)
  const void* p = ::memrchr(buf, delim, static_cast<std::size_t>(len));
  return p == nullptr ? -1 : static_cast<const char*>(p) - buf;
#else
  std::int64_t pos = static_cast<std::int64_t>(len) - 1;
  while (pos >= 0 && buf[static_cast<std::size_t>(pos)] != delim) --pos;
  return pos;
#endif
}

/// Offset of the first `delim` in buf[from, len), or len if absent.
std::uint64_t findDelimFrom(const char* buf, std::uint64_t len, std::uint64_t from, char delim) {
  if (from >= len) return len;
  const void* p = std::memchr(buf + from, delim, static_cast<std::size_t>(len - from));
  return p == nullptr ? len : static_cast<std::uint64_t>(static_cast<const char*>(p) - buf);
}

/// Number of ranks that actually read bytes in the iteration starting at
/// `globalOffset` (the paper's "subset of processes call the file read
/// function" in the last iteration).
int readerCount(std::uint64_t globalOffset, std::uint64_t fileSize, std::uint64_t blockSize, int nprocs) {
  if (globalOffset >= fileSize) return 0;
  const std::uint64_t remaining = fileSize - globalOffset;
  const std::uint64_t k = (remaining + blockSize - 1) / blockSize;
  return static_cast<int>(std::min<std::uint64_t>(k, static_cast<std::uint64_t>(nprocs)));
}

}  // namespace

PartitionReader::PartitionReader(mpi::Comm& comm, io::File& file, const PartitionConfig& cfg,
                                 std::uint64_t chunkBytes, const FormatReader* format)
    : comm_(&comm), file_(&file), cfg_(cfg), fmt_(format), streaming_(chunkBytes > 0) {
  fileSize_ = file.size();
  MVIO_CHECK(fileSize_ > 0, "cannot partition an empty file");

  blockSize_ = streaming_ ? chunkBytes : cfg.blockSize;
  if (blockSize_ == 0) {
    blockSize_ = (fileSize_ + static_cast<std::uint64_t>(comm.size()) - 1) /
                 static_cast<std::uint64_t>(comm.size());
    // Algorithm 1 requires at least one delimiter per full block, i.e. a
    // block must be able to hold the largest record. For small files the
    // equal split is clamped up, leaving trailing ranks without a block —
    // "a subset of processes call the file read function".
    blockSize_ = std::max<std::uint64_t>(blockSize_, cfg.maxGeometryBytes);
    blockSize_ = std::max<std::uint64_t>(blockSize_, 1);
  }
  MVIO_CHECK(blockSize_ <= io::kRomioMaxBytes,
             "block size exceeds ROMIO's 2 GB single-operation limit; use a smaller blockSize");

  const std::uint64_t fileChunkSize = static_cast<std::uint64_t>(comm.size()) * blockSize_;
  iterations_ = (fileSize_ + fileChunkSize - 1) / fileChunkSize;
  result_.iterations = iterations_;

  if (cfg_.strategy == BoundaryStrategy::kMessage) {
    buf_.resize(static_cast<std::size_t>(blockSize_));
    recvBuf_.resize(static_cast<std::size_t>(cfg_.maxGeometryBytes));
  }
}

bool PartitionReader::stepMessage(std::string& out) {
  const int nprocs = comm_->size();
  const int rank = comm_->rank();
  const char delim = cfg_.delimiter;
  const std::uint64_t fileChunkSize = static_cast<std::uint64_t>(nprocs) * blockSize_;
  const std::uint64_t i = iter_;

  const std::uint64_t globalOffset = i * fileChunkSize;
  const std::uint64_t start = globalOffset + static_cast<std::uint64_t>(rank) * blockSize_;
  const std::uint64_t myLen =
      start < fileSize_ ? std::min<std::uint64_t>(blockSize_, fileSize_ - start) : 0;
  const int k = readerCount(globalOffset, fileSize_, blockSize_, nprocs);
  const bool lastIteration = (i + 1 == iterations_);
  const bool reading = myLen > 0;

  // File read (Level 0 or Level 1). Collective calls include non-readers.
  if (cfg_.collectiveRead) {
    const std::size_t got = file_->readAtAllBytes(start, buf_.data(), static_cast<std::size_t>(myLen));
    MVIO_CHECK(got == myLen, "collective read returned short");
  } else if (reading) {
    const std::size_t got = file_->readAtBytes(start, buf_.data(), static_cast<std::size_t>(myLen));
    MVIO_CHECK(got == myLen, "independent read returned short");
  }
  result_.bytesRead += myLen;

  if (!reading) {
    if (lastIteration) MVIO_CHECK(carry_.empty() || rank != 0, "unconsumed carry fragment");
    return true;
  }

  const bool tailHolder = lastIteration && rank == k - 1;  // holds the EOF tail
  const bool framed = fmt_ != nullptr && fmt_->framing() == Framing::kFramed;

  std::string_view keep;
  std::string_view fragment;
  if (tailHolder) {
    // Everything up to EOF is mine; a missing trailing delimiter just
    // means the final record is EOF-terminated.
    keep = std::string_view(buf_.data(), static_cast<std::size_t>(myLen));
  } else if (framed) {
    // Walk the record length headers for the last boundary in the block
    // (no scan touches record payloads). The dangling partial record past
    // it rings to the successor exactly like a text fragment; a plausible
    // header bounds it by maxGeometryBytes, so it always fits recvBuf_.
    const std::int64_t cut =
        fmt_->splitBoundary(std::string_view(buf_.data(), static_cast<std::size_t>(myLen)),
                            cfg_.maxGeometryBytes);
    MVIO_CHECK(cut >= 0,
               "no record boundary inside a file block: block size is smaller than a record; "
               "increase blockSize or maxGeometryBytes");
    keep = std::string_view(buf_.data(), static_cast<std::size_t>(cut));
    fragment = std::string_view(buf_.data() + cut, static_cast<std::size_t>(myLen) -
                                                       static_cast<std::size_t>(cut));
  } else {
    // Backward scan for the last delimiter (Algorithm 1 lines 9-11).
    const std::int64_t lastDelimPos = findLastDelim(buf_.data(), myLen, delim);
    MVIO_CHECK(lastDelimPos >= 0,
               "no record delimiter inside a file block: block size is smaller than a record; "
               "increase blockSize or maxGeometryBytes");
    keep = std::string_view(buf_.data(), static_cast<std::size_t>(lastDelimPos) + 1);
    fragment = std::string_view(buf_.data() + lastDelimPos + 1,
                                myLen - static_cast<std::uint64_t>(lastDelimPos) - 1);
  }

  const bool willSend = !tailHolder;  // every reader except the EOF-tail holder
  const int succ = (rank + 1) % nprocs;
  const int pred = (rank - 1 + nprocs) % nprocs;
  // Rank 0 receives the chunk-junction fragment from rank N-1, to be
  // prepended to its next-iteration block.
  const bool willRecv = rank > 0 ? true : !lastIteration;
  const int tag = static_cast<int>(i % kTagModulus);

  std::string received;
  auto doSend = [&] {
    comm_->send(fragment.data(), static_cast<int>(fragment.size()), mpi::Datatype::char_(), succ, tag);
    result_.fragmentsSent += 1;
    result_.fragmentBytes += fragment.size();
  };
  auto doRecv = [&] {
    const mpi::Status st =
        comm_->recv(recvBuf_.data(), static_cast<int>(recvBuf_.size()), mpi::Datatype::char_(), pred, tag);
    received.assign(recvBuf_.data(), st.bytes);
  };

  // Even ranks send before receiving; odd ranks receive before sending
  // (Algorithm 1 lines 12-19).
  if (rank % 2 == 0) {
    if (willSend) doSend();
    if (willRecv) doRecv();
  } else {
    if (willRecv) doRecv();
    if (willSend) doSend();
  }

  // Assemble this iteration's text: predecessor fragment + own records.
  if (rank == 0) {
    out.append(carry_);
    carry_ = std::move(received);
  } else {
    out.append(received);
  }
  out.append(keep);
  if (lastIteration) MVIO_CHECK(carry_.empty() || rank != 0, "unconsumed carry fragment");
  return true;
}

bool PartitionReader::stepOverlap(std::string& out) {
  const int nprocs = comm_->size();
  const int rank = comm_->rank();
  const char delim = cfg_.delimiter;
  const std::uint64_t halo = cfg_.maxGeometryBytes;
  const std::uint64_t fileChunkSize = static_cast<std::uint64_t>(nprocs) * blockSize_;
  const std::uint64_t i = iter_;

  const std::uint64_t globalOffset = i * fileChunkSize;
  const std::uint64_t start = globalOffset + static_cast<std::uint64_t>(rank) * blockSize_;
  const std::uint64_t myLen =
      start < fileSize_ ? std::min<std::uint64_t>(blockSize_, fileSize_ - start) : 0;

  // Read [start-1, start+myLen+halo): one look-back byte to detect a
  // record boundary exactly at `start`, plus the halo for the record
  // spilling over the block end.
  const std::uint64_t readStart = start == 0 ? 0 : start - 1;
  const std::uint64_t readEnd =
      myLen == 0 ? readStart : std::min<std::uint64_t>(start + myLen + halo, fileSize_);
  const std::uint64_t readLen = readEnd - readStart;
  buf_.resize(static_cast<std::size_t>(readLen));

  if (cfg_.collectiveRead) {
    const std::size_t got = file_->readAtAllBytes(readStart, buf_.data(), static_cast<std::size_t>(readLen));
    MVIO_CHECK(got == readLen, "collective read returned short");
  } else if (readLen > 0) {
    const std::size_t got = file_->readAtBytes(readStart, buf_.data(), static_cast<std::size_t>(readLen));
    MVIO_CHECK(got == readLen, "independent read returned short");
  }
  result_.bytesRead += readLen;
  if (myLen == 0) return true;

  const std::uint64_t blockEnd = start + myLen;  // absolute file offset
  const bool framed = fmt_ != nullptr && fmt_->framing() == Framing::kFramed;
  const std::string_view window(buf_.data(), static_cast<std::size_t>(readLen));

  // First record starting inside [start, blockEnd).
  std::uint64_t firstStart;  // absolute
  if (start == 0) {
    firstStart = 0;
  } else if (framed) {
    // First header whose record chain validates at an absolute offset
    // >= start (the look-back byte at start-1 belongs to the predecessor).
    const std::uint64_t b = fmt_->firstBoundary(window, start - readStart, cfg_.maxGeometryBytes);
    if (b == FormatReader::npos) return true;  // no record begins in this block
    firstStart = readStart + b;
    if (firstStart >= blockEnd) return true;  // boundary record belongs to successor
  } else {
    const std::uint64_t d = findDelimFrom(buf_.data(), readLen, 0, delim);
    if (d == readLen) return true;  // no record begins in this block
    firstStart = readStart + d + 1;
    if (firstStart >= blockEnd) return true;  // boundary record belongs to successor
  }

  // End of the record containing byte blockEnd-1: first boundary at an
  // absolute offset >= blockEnd (or EOF for a final unterminated record).
  std::uint64_t keepEndExclusive;  // absolute
  if (framed) {
    const std::uint64_t e = fmt_->nextBoundary(window, firstStart - readStart,
                                               blockEnd - readStart, cfg_.maxGeometryBytes);
    if (e != FormatReader::npos) {
      keepEndExclusive = readStart + e;
    } else {
      MVIO_CHECK(readEnd == fileSize_,
                 "record extends past the halo region: maxGeometryBytes is smaller than a record");
      keepEndExclusive = fileSize_;
    }
  } else {
    const std::uint64_t e = findDelimFrom(buf_.data(), readLen, blockEnd - 1 - readStart, delim);
    if (e < readLen) {
      keepEndExclusive = readStart + e + 1;  // include the delimiter
    } else {
      MVIO_CHECK(readEnd == fileSize_,
                 "record extends past the halo region: maxGeometryBytes is smaller than a record");
      keepEndExclusive = fileSize_;
    }
  }

  out.append(buf_.data() + (firstStart - readStart),
             static_cast<std::size_t>(keepEndExclusive - firstStart));
  return true;
}

bool PartitionReader::next(std::string& text) {
  text.clear();
  if (iter_ >= iterations_) return false;

  if (!streaming_) {
    // One-shot: run every iteration into one string. This rank keeps
    // ~blockSize bytes per iteration (capped by the file), so pre-size
    // the output once instead of paying append-growth copies.
    text.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(iterations_ * blockSize_, fileSize_)));
  }
  do {
    switch (cfg_.strategy) {
      case BoundaryStrategy::kMessage:
        stepMessage(text);
        break;
      case BoundaryStrategy::kOverlap:
        stepOverlap(text);
        break;
    }
    ++iter_;
  } while (!streaming_ && iter_ < iterations_);
  return true;
}

PartitionResult readPartitioned(mpi::Comm& comm, io::File& file, const PartitionConfig& cfg) {
  PartitionReader reader(comm, file, cfg);
  std::string text;
  reader.next(text);
  PartitionResult out = reader.counters();
  out.text = std::move(text);
  return out;
}

}  // namespace mvio::core
