#pragma once
// Batch range query — the paper's other framework exemplar ("for spatial
// query workload, the second collection can be treated as geometries from
// batch query").
//
// A batch of rectangle queries is treated as layer S of the framework:
// queries are projected to grid cells and exchanged exactly like data
// geometries, each cell matches its local data against its local queries
// (R-tree filter + exact refine + reference-point dedup), and per-query
// match counts are reduced across ranks.

#include <cstdint>
#include <vector>

#include "core/framework.hpp"

namespace mvio::core {

struct RangeQueryConfig {
  FrameworkConfig framework;
  std::size_t rtreeFanout = 16;
};

struct RangeQueryStats {
  PhaseBreakdown phases;
  RebalanceStats balance;          ///< owned-cell migration volumes (rebalanceCells)
  RecoveryStats recovery;          ///< failure injection / recovery outcome
  std::uint64_t totalMatches = 0;  ///< sum over all queries, all ranks
  std::uint64_t cellsOwned = 0;
  GridSpec grid;
};

/// Run `queries` (rectangles, indexed 0..n-1 across all ranks: every rank
/// passes the SAME full batch) against the dataset. Returns global match
/// counts per query. Collective.
std::vector<std::uint64_t> batchRangeQuery(mpi::Comm& comm, pfs::Volume& volume,
                                           const DatasetHandle& data,
                                           const std::vector<geom::Envelope>& queries,
                                           const RangeQueryConfig& cfg,
                                           RangeQueryStats* stats = nullptr);

}  // namespace mvio::core
