#pragma once
// Communication buffer management and the global spatial exchange
// (paper §4.2.3).
//
// After local grid projection, a rank may hold records belonging to cells
// owned by other ranks. exchangeByCell() performs the personalized
// all-to-all over a cell-tagged GeometryBatch: records are serialized
// straight from the batch arenas into one send buffer, round headers are
// exchanged with MPI_Alltoall, and the payload moves with MPI_Alltoallv —
// "all-to-all collective communication is performed in at least two
// communication rounds", exactly as the paper describes.
//
// Each round's header carries the payload byte count, the record count,
// and a last-round flag per destination. The counts let receivers size
// their buffers and cross-check the deserialized stream; the flag makes
// a zero-record round (a streaming chunk that happened to send nothing)
// distinguishable from a terminated stream, so a rank that believes the
// stream has ended while a peer keeps sending fails fast with a protocol
// error instead of deadlocking in a later round.
//
// For large datasets the exchange is windowed (paper: "sliding window
// technique where communication happens in distinct number of phases"):
// cells are partitioned into `windowPhases` contiguous id ranges and one
// alltoallv round runs per range, bounding peak buffer memory.
//
// Wire format per geometry: [cellId:u32][userDataLen:u32][wkbLen:u32]
// [userData][wkb]. WKB is the compact binary OGC encoding (geom/wkb.hpp).

#include <cstdint>
#include <functional>
#include <vector>

#include "core/grid.hpp"
#include "geom/geometry.hpp"
#include "geom/geometry_batch.hpp"
#include "mpi/runtime.hpp"

namespace mvio::core {

/// A materialized geometry tagged with its grid cell. The pipeline itself
/// never builds these — it stays on GeometryBatch — but the struct and the
/// codec below remain the wire-format reference implementation: tests and
/// the micro benches use them to assert the batch serializer is
/// byte-identical and to price the per-record staging path it replaced.
struct CellGeometry {
  int cell = 0;
  geom::Geometry geometry;
};

/// Maps a cell id to its owner rank (e.g. roundRobinOwner).
using CellOwnerFn = std::function<int(int cell)>;

/// Reference codec for the wire format (one record appended to `out`).
void serializeCellGeometry(const CellGeometry& cg, std::string& out);
/// Deserialize every record in `bytes`, appending to `out`.
void deserializeCellGeometries(std::string_view bytes, std::vector<CellGeometry>& out);

/// Deterministic cost model for communication-buffer management (the
/// paper's "serialization and deserialization" overhead). Measured thread
/// CPU is too coarse on quantized-clock hosts for sub-10ms phases, so the
/// exchange charges these calibrated rates instead; bench_micro_datatype
/// reports the real hot-path numbers for comparison.
struct SerializationCostModel {
  double bytesPerSecond = 2.5e9;      ///< WKB encode/decode streaming rate
  double perGeometrySeconds = 3e-7;   ///< fixed per-record overhead
};

struct ExchangeStats {
  std::uint64_t bytesSent = 0;
  std::uint64_t bytesReceived = 0;
  std::uint64_t geometriesSent = 0;
  std::uint64_t geometriesReceived = 0;
  std::uint64_t phases = 0;
};

/// Per-destination round header, exchanged with MPI_Alltoall before the
/// payload round (one per sliding-window phase).
struct RoundHeader {
  std::uint64_t payloadBytes = 0;
  std::uint32_t records = 0;
  std::uint32_t flags = 0;  ///< kRoundLast on the stream's final phase
};
static_assert(sizeof(RoundHeader) == 16, "round header is 16 wire bytes");
inline constexpr std::uint32_t kRoundLast = 1;

/// Reusable per-round working set of exchangeByCell: the header /
/// count / displacement vectors and the two payload buffers. A one-shot
/// exchange allocates these on the stack; the streaming framework passes
/// one instance across all of a run's rounds so every round after the
/// first reuses the capacity instead of reallocating p-sized vectors and
/// re-growing the payload buffers from zero.
struct ExchangeScratch {
  std::vector<int> sendCounts, sendDispls, recvCounts, recvDispls;
  std::vector<RoundHeader> sendHeaders, recvHeaders;
  std::vector<std::size_t> writeAt;
  std::vector<char> sendBuf, recvBuf;
};

// ---- MPI shard transport (owned-cell rebalancing) ------------------------
// After the exchange phase every cell's records sit on its round-robin
// owner, which under spatial skew can leave one rank holding a multiple of
// the mean load. The transport moves whole owned cells: ranks agree on a
// new cell→rank map (greedy LPT over globally-reduced per-cell loads, a
// deterministic computation every rank repeats bit-identically), then each
// leaving cell's records travel point-to-point as checksummed BatchShard
// wire blobs (geom/batch_shard.hpp — the same codec the spill path uses;
// header and payload are FNV-1a checksummed, so a truncated or corrupted
// blob is rejected at decode). Each sender closes its per-peer stream with
// a summary frame carrying blob/record/byte totals, which the receiver
// cross-checks before trusting the migrated records.

/// Point-to-point tag carried by migration blobs and summary frames.
inline constexpr int kShardMigrationTag = 7741;

struct ShardTransportStats {
  std::uint64_t bytesSent = 0;
  std::uint64_t bytesReceived = 0;
  std::uint64_t recordsSent = 0;
  std::uint64_t recordsReceived = 0;
  std::uint64_t blobsSent = 0;      ///< wire blobs (migration rounds) this rank sent
  std::uint64_t blobsReceived = 0;
};

/// Stale-manifest guard, shared by DistributedIndex::loadShards and the
/// recovery restore path: throws util::Error unless every record of `b`
/// sits in a cell that `owner` maps to `expectedRank`. A persisted shard
/// set whose cells no longer belong to the loading rank (the cell→rank
/// map moved on since the manifest was written) is rejected instead of
/// silently double-serving cells. `context` prefixes the error message.
void validateCellOwnership(const geom::GeometryBatch& b, const std::vector<int>& owner,
                           int expectedRank, const char* context);

/// Greedy LPT (longest-processing-time-first) assignment of cells to
/// ranks: cells sorted by load descending (ties by cell id) each go to the
/// currently least-loaded rank (ties by rank id). Every cell weighs at
/// least 1 so empty cells spread round-robin-ish instead of piling onto
/// rank 0. Deterministic: identical inputs produce identical maps on every
/// rank, so no agreement round is needed after the load reduction.
std::vector<int> lptAssignCells(const std::vector<std::uint64_t>& cellLoads, int nprocs);

/// Seeded, masked form of the same greedy pass — the one LPT loop both
/// the rebalancer and the recovery re-homing share, so their ordering
/// and tie-breaking cannot silently diverge. Bins start at `seedLoads`
/// (its size is the bin count); only cells with mask[c] != 0 are
/// assigned, each to the least-loaded bin (same descending-load /
/// ascending-id / lowest-bin tie order, every cell weighing at least 1),
/// writing the winning *bin index* into ownerBins[c]. Unmasked cells'
/// entries are left untouched.
void lptAssignCellsSeeded(const std::vector<std::uint64_t>& cellLoads,
                          const std::vector<char>& mask, std::vector<std::uint64_t> seedLoads,
                          std::vector<int>& ownerBins);

/// Move owned-cell records between ranks. `outgoing[d]` holds the records
/// this rank ships to rank d (cell tags preserved; `outgoing[rank]` must
/// be empty — cells that stay put never hit the wire). Each destination's
/// records are split into shard blobs of at most `maxBlobBytes` encoded
/// bytes (at least one record per blob) and sent point-to-point, followed
/// by a summary frame; the function then receives every peer's stream in
/// rank order and returns the records migrating to this rank. Throws
/// util::Error on a corrupted/truncated blob or a summary mismatch.
/// Collective over `comm`.
geom::GeometryBatch migrateShards(mpi::Comm& comm, std::vector<geom::GeometryBatch>&& outgoing,
                                  std::uint64_t maxBlobBytes, ShardTransportStats* stats = nullptr,
                                  const SerializationCostModel& costs = {});

/// Personalized all-to-all of a cell-tagged GeometryBatch — the pipeline's
/// hot path. `outgoing` is consumed; records with cell == kNoCell are
/// dropped (they project to no grid cell). Each phase sizes every
/// destination first, then packs records straight from the batch arenas
/// into ONE reused send buffer at computed displacements — exactly one
/// copy of payload bytes per phase, no per-destination staging strings —
/// and deserializes received bytes directly into the result batch.
/// Returns the records this rank owns (retained + received). Collective.
///
/// `lastRound` stamps kRoundLast on the final window phase. One-shot
/// callers keep the default (their single exchange ends the stream); the
/// streaming framework passes false for every data round and terminates
/// the stream with one empty round flagged true — every receiver checks
/// that all senders agree with its own view of termination.
geom::GeometryBatch exchangeByCell(mpi::Comm& comm, geom::GeometryBatch&& outgoing,
                                   const CellOwnerFn& owner, int windowPhases, int totalCells,
                                   ExchangeStats* stats = nullptr,
                                   const SerializationCostModel& costs = {}, bool lastRound = true,
                                   ExchangeScratch* scratch = nullptr);

}  // namespace mvio::core
