#include "core/overlay.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "geom/clip.hpp"
#include "io/file.hpp"
#include "util/error.hpp"

namespace mvio::core {

namespace {

/// Accumulates clipped coverage per owned cell. Batch-native: measures
/// are clipped straight from the arena coordinates (recordClippedMeasure),
/// so no record is ever materialized.
///
/// A cell's records arrive in whatever order the exchange delivered them,
/// and the streaming pipeline's rounds interleave arrivals differently
/// than the one-shot pass. Floating-point addition is not associative, so
/// the per-record measures are sorted before summing — the cell total is
/// then a function of the record *multiset* alone, and chunked and
/// one-shot runs write bit-identical coverage rasters.
struct CoverageTask final : RefineTask {
  std::map<int, CellCoverage> cells;  // ordered: simplifies the strided write
  std::vector<double> measures;       // reused per-cell scratch

  double orderInsensitiveSum(const geom::BatchSpan& span, const geom::Envelope& box) {
    measures.clear();
    measures.reserve(span.size());
    for (std::size_t k = 0; k < span.size(); ++k) measures.push_back(span.clippedMeasure(k, box));
    std::sort(measures.begin(), measures.end());
    double sum = 0;
    for (const double m : measures) sum += m;
    return sum;
  }

  void refineCellBatch(const GridSpec& grid, int cell, const geom::BatchSpan& r,
                       const geom::BatchSpan& s) override {
    const geom::Envelope box = grid.cellEnvelope(cell);
    CellCoverage& cov = cells[cell];
    cov.measureR += orderInsensitiveSum(r, box);
    cov.measureS += orderInsensitiveSum(s, box);
  }

  std::unique_ptr<RefineTask> makeWorker() override { return std::make_unique<CoverageTask>(); }

  void mergeWorker(RefineTask& worker) override {
    // Each cell is refined exactly once per run, so folding a worker's
    // entries adds each sorted-sum to a zero-initialized slot — the merge
    // is bit-identical to the serial accumulation.
    auto& w = static_cast<CoverageTask&>(worker);
    for (auto& [cell, cov] : w.cells) {
      CellCoverage& mine = cells[cell];
      mine.measureR += cov.measureR;
      mine.measureS += cov.measureS;
    }
    w.cells.clear();
  }
};

}  // namespace

OverlayStats gridCoverageOverlay(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                                 const DatasetHandle* s, const OverlayConfig& cfg) {
  CoverageTask task;
  const FrameworkStats fw = runFilterRefine(comm, volume, r, s, cfg.framework, task);

  OverlayStats stats;
  stats.phases = fw.phases;
  stats.grid = fw.grid;
  stats.balance = fw.balance;
  stats.recovery = fw.recovery;
  if (fw.recovery.died) return stats;  // dead ranks join no further collective

  // The collective write (and the totals reduction) runs on the
  // communicator the pipeline finished on — after a recovery that is the
  // survivors, whose owned-cell map fw.cellOwner names world ranks.
  mpi::Comm active = fw.activeComm ? *fw.activeComm : comm;
  const int p = active.size();
  const int cellCount = fw.grid.cellCount();
  constexpr std::uint64_t kRecordBytes = sizeof(CellCoverage);
  static_assert(sizeof(CellCoverage) == 16, "coverage record must be two doubles");

  // Rank 0 creates the shared row-major output file; everyone then opens
  // it collectively.
  if (active.rank() == 0) {
    volume.createOrReplace(cfg.outputPath,
                           std::make_shared<pfs::MemoryBackingStore>(
                               static_cast<std::uint64_t>(cellCount) * kRecordBytes));
  }
  active.barrier();

  const double writeStart = active.clock().now();
  io::File out = io::File::open(active, volume, cfg.outputPath, cfg.framework.ioHints);

  // My owned cells, ascending: the round-robin stride {c : c % P == rank}
  // by default, or the rebalanced/recovered cell→rank map (world ranks)
  // when the framework reassigned ownership. Under an adaptive partition
  // map the raster stays keyed by *uniform* cells (the refine sub-spans
  // see uniform cells, so the output bytes are scheme-independent), but a
  // uniform cell is written by whichever rank owns its partition cell.
  // The task only has entries for non-empty cells, so fill the gaps with
  // zero records.
  const PartitionMap& pm = fw.partition;
  std::vector<int> myCells;
  if (fw.cellOwner.empty() && pm.isUniform()) {
    for (int c = active.rank(); c < cellCount; c += p) myCells.push_back(c);
  } else {
    for (int c = 0; c < cellCount; ++c) {
      const int part = pm.groupOf(c);
      const bool mine =
          fw.cellOwner.empty()
              ? roundRobinOwner(part, p) == active.rank()
              : fw.cellOwner[static_cast<std::size_t>(part)] == active.worldRank();
      if (mine) myCells.push_back(c);
    }
  }
  std::vector<CellCoverage> mine;
  mine.reserve(myCells.size());
  for (const int c : myCells) {
    auto it = task.cells.find(c);
    mine.push_back(it == task.cells.end() ? CellCoverage{} : it->second);
  }

  const auto record = mpi::Datatype::contiguous(static_cast<int>(kRecordBytes), mpi::Datatype::byte());
  if (fw.cellOwner.empty() && pm.isUniform()) {
    // Figure 4's view: record `rank` of every group of P records (the
    // round-robin cell ownership), written collectively in one call.
    const auto filetype = record.resized(0, static_cast<std::uint64_t>(p) * kRecordBytes);
    out.setView(static_cast<std::uint64_t>(active.rank()) * kRecordBytes, mpi::Datatype::byte(),
                filetype);
    out.writeAtAll(0, mine.data(), static_cast<int>(mine.size()), record);
  } else if (!myCells.empty()) {
    // Rebalanced ownership is irregular, so the view is an indexed
    // filetype over this rank's cell ids (one record block per cell),
    // pinned to the raster extent — the same collective Level-3 write,
    // with MPI_Type_indexed instead of a stride.
    const std::vector<int> ones(myCells.size(), 1);
    const auto filetype = mpi::Datatype::indexed(ones, myCells, record)
                              .resized(0, static_cast<std::uint64_t>(cellCount) * kRecordBytes);
    out.setView(0, mpi::Datatype::byte(), filetype);
    out.writeAtAll(0, mine.data(), static_cast<int>(mine.size()), record);
  } else {
    // No owned cells: still participate in the collective write.
    out.setView(0, mpi::Datatype::byte(), record);
    out.writeAtAll(0, nullptr, 0, record);
  }
  stats.phases.comm += active.clock().now() - writeStart;
  stats.cellsWritten = mine.size();

  double localR = 0, localS = 0;
  for (const auto& cov : mine) {
    localR += cov.measureR;
    localS += cov.measureS;
  }
  stats.totalR = active.allreduceSum(localR);
  stats.totalS = active.allreduceSum(localS);
  return stats;
}

}  // namespace mvio::core
