#pragma once
// Pluggable ingest formats (DESIGN.md §12).
//
// Everything the pipeline reads used to funnel through the WKT text
// scanner; with fast parallel I/O that made parse the dominant CPU cost
// (bench_fig14). A FormatReader abstracts the two things the pipeline
// actually needs from an input encoding:
//
//   * record boundary resolution — where may a raw file block be cut so
//     both sides hold whole records? Text formats answer with delimiter
//     scans; the binary WKB record format walks length-prefixed headers
//     (no scan ever touches record payloads).
//   * chunk parsing — turn one boundary-aligned chunk into GeometryBatch
//     arenas, fanning out over the rank's worker pool when one exists.
//
// The length-prefixed WKB record format framed here mirrors the exchange
// wire layout (core/exchange.cpp — [cell][userLen][wkbLen][user][wkb])
// with the cell field repurposed as a self-synchronizing magic: cells are
// assigned at grid projection, never in files.
//
//     [magic "WKB1" u32][userLen u32][wkbLen u32][userData][wkb]
//
// The WkbFormatReader decodes records straight into the batch arenas via
// geom::readWkbInto — no intermediate Geometry, no text scan: the
// zero-parse columnar ingest path.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/parser.hpp"
#include "geom/geometry_batch.hpp"

namespace mvio::core {

/// Record header magic: the bytes 'W','K','B','1' in file order
/// (little-endian u32). A header never begins with anything else.
inline constexpr std::uint32_t kWkbRecordMagic = 0x31424B57u;
/// Bytes of [magic][userLen][wkbLen] preceding every record payload.
inline constexpr std::uint64_t kWkbRecordHeaderBytes = 12;

/// Append record `i` of `b` as one framed WKB record.
void appendWkbRecord(const geom::GeometryBatch& b, std::size_t i, std::string& out);

/// Append one geometry + attribute blob as a framed WKB record (the
/// corpus-writer convenience; the batch overload is the hot path).
void appendWkbRecord(const geom::Geometry& g, std::string_view userData, std::string& out);

/// How a format's records are delimited on disk.
enum class Framing {
  kDelimited,  ///< records separated by a delimiter byte (text formats)
  kFramed,     ///< records carry length-prefixed headers (binary formats)
};

/// One ingest format: boundary resolution + chunk parsing. Implementations
/// must be stateless per call (const, shared across ranks and worker
/// threads). Register instances in the FormatRegistry or hand them to
/// DatasetHandle::format directly.
class FormatReader {
 public:
  virtual ~FormatReader() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual Framing framing() const = 0;
  /// Delimiter byte for kDelimited formats (unused for kFramed).
  [[nodiscard]] virtual char delimiter() const { return '\n'; }

  /// One past the last record boundary in `block` — a raw kMessage file
  /// block that may begin mid-record. Bytes past the returned offset are
  /// the dangling fragment ringed to the successor rank. Returns -1 when
  /// no boundary exists in the block (record larger than the block); 0 is
  /// a valid answer (the whole block is one fragment).
  [[nodiscard]] virtual std::int64_t splitBoundary(std::string_view block,
                                                   std::uint64_t maxRecordBytes) const = 0;

  /// First record boundary at offset >= `from` in `buf`, with no boundary
  /// position known a priori (the kOverlap "where does my block's first
  /// record start" question). Returns npos when none exists in `buf`.
  [[nodiscard]] virtual std::uint64_t firstBoundary(std::string_view buf, std::uint64_t from,
                                                    std::uint64_t maxRecordBytes) const = 0;

  /// First record boundary at offset >= `from`, walking forward from
  /// `knownBoundary` (a position already established as a boundary, always
  /// <= from). Framed formats hop length headers; text formats scan for
  /// the delimiter. Returns npos when the record containing `from` extends
  /// past the end of `buf`.
  [[nodiscard]] virtual std::uint64_t nextBoundary(std::string_view buf,
                                                   std::uint64_t knownBoundary, std::uint64_t from,
                                                   std::uint64_t maxRecordBytes) const = 0;

  /// Parse one boundary-aligned chunk into `out`. With a pool of >1
  /// threads the format fans out over record-boundary slices exactly like
  /// Parser::parseAllParallel (results bit-identical to serial); `timing`
  /// (optional) reports the region's total CPU and critical path for the
  /// caller to charge to the rank clock.
  virtual ParseStats parseChunk(std::string_view text, geom::GeometryBatch& out,
                                util::ThreadPool* pool, ParseTiming* timing = nullptr) const = 0;

  static constexpr std::uint64_t npos = UINT64_MAX;
};

/// Adapter wrapping a delimiter-based text Parser (WKT, CSV, user
/// formats) as a FormatReader — the behavior-preserving default every
/// existing pipeline runs through.
class TextFormatReader final : public FormatReader {
 public:
  /// Non-owning view over an externally held parser (the framework shim
  /// for DatasetHandle::parser).
  explicit TextFormatReader(const Parser* parser, std::string name = "text");
  /// Owning form for registry builtins.
  TextFormatReader(std::string name, std::unique_ptr<const Parser> parser);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] Framing framing() const override { return Framing::kDelimited; }
  [[nodiscard]] char delimiter() const override { return parser_->delimiter(); }
  [[nodiscard]] std::int64_t splitBoundary(std::string_view block,
                                           std::uint64_t maxRecordBytes) const override;
  [[nodiscard]] std::uint64_t firstBoundary(std::string_view buf, std::uint64_t from,
                                            std::uint64_t maxRecordBytes) const override;
  [[nodiscard]] std::uint64_t nextBoundary(std::string_view buf, std::uint64_t knownBoundary,
                                           std::uint64_t from,
                                           std::uint64_t maxRecordBytes) const override;
  ParseStats parseChunk(std::string_view text, geom::GeometryBatch& out, util::ThreadPool* pool,
                        ParseTiming* timing) const override;

 private:
  std::string name_;
  std::unique_ptr<const Parser> owned_;
  const Parser* parser_;
};

/// Length-prefixed WKB records: boundary resolution walks the 12-byte
/// headers, parseChunk decodes each record's WKB payload straight into the
/// batch arenas (columnar, the default) or through a materialized Geometry
/// (the equivalence/bench reference when `columnar` is false).
class WkbFormatReader final : public FormatReader {
 public:
  explicit WkbFormatReader(bool columnar = true) : columnar_(columnar) {}

  [[nodiscard]] std::string_view name() const override { return "wkb"; }
  [[nodiscard]] Framing framing() const override { return Framing::kFramed; }
  [[nodiscard]] std::int64_t splitBoundary(std::string_view block,
                                           std::uint64_t maxRecordBytes) const override;
  [[nodiscard]] std::uint64_t firstBoundary(std::string_view buf, std::uint64_t from,
                                            std::uint64_t maxRecordBytes) const override;
  [[nodiscard]] std::uint64_t nextBoundary(std::string_view buf, std::uint64_t knownBoundary,
                                           std::uint64_t from,
                                           std::uint64_t maxRecordBytes) const override;
  ParseStats parseChunk(std::string_view text, geom::GeometryBatch& out, util::ThreadPool* pool,
                        ParseTiming* timing) const override;

  /// Cut a boundary-aligned chunk into at most `slices` record-aligned
  /// ranges tiling it exactly (the framed analogue of sliceRecords;
  /// exposed for the slice tests).
  [[nodiscard]] std::vector<std::string_view> sliceFramedRecords(
      std::string_view text, int slices, std::uint64_t maxRecordBytes) const;

 private:
  ParseStats parseSerial(std::string_view text, geom::GeometryBatch& out) const;
  bool columnar_;
};

/// Name → FormatReader registry; "wkt", "csv" (text defaults), and "wkb"
/// (framed binary) are pre-registered. Thread-safe.
class FormatRegistry {
 public:
  static FormatRegistry& instance();

  /// Register (or replace) a format under reader->name().
  void add(std::shared_ptr<const FormatReader> reader);
  /// Lookup; nullptr when unknown. The pointer stays valid for the process
  /// lifetime (readers are never destroyed once registered).
  [[nodiscard]] const FormatReader* find(std::string_view name) const;
  /// Lookup; throws util::Error when unknown.
  [[nodiscard]] const FormatReader* get(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  FormatRegistry();
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace mvio::core
