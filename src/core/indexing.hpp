#pragma once
// Distributed spatial indexing (paper Figure 20: "in-memory spatial
// indexing of Road Network (137 GB) ... using 320 processes, spatial
// indexing of 717M edges takes only 90 seconds").
//
// The pipeline is the single-layer variant of the framework: partitioned
// read, parse, grid projection, all-to-all exchange, then a bulk-loaded
// R-tree per owned cell. The index is batch-native end to end: it adopts
// the rank's post-exchange GeometryBatch wholesale (no per-record copies
// or materialized Geometry objects), per-cell R-trees bulk-load from the
// arena-resident MBRs, and queries run filter + exact refine directly
// against batch records (recordIntersectsBox).
//
// Adoption is *incremental* (DESIGN.md §7): addBatch() splices a batch
// onto the index's arenas and appends its record ids to the per-cell
// lists, marking touched cells stale; stale R-trees re-bulk-load lazily
// at first query (or eagerly via buildTrees()), so a streaming run that
// delivers many batches pays one tree build per cell, not one per round.
// The same mechanism persists a rank's owned cells across runs:
// saveShards() writes the adopted batch as BatchShards on a SpillStore
// plus a manifest, and loadShards() rebuilds the index from them without
// re-running the pipeline. The resulting DistributedIndex supports batch
// rectangle queries against the local portion plus a helper to reduce
// global match counts.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/framework.hpp"
#include "geom/rtree.hpp"
#include "pfs/spill_store.hpp"

namespace mvio::core {

struct IndexingConfig {
  FrameworkConfig framework;
  std::size_t rtreeFanout = 16;
};

/// Per-rank result: one R-tree per owned cell over records of one adopted
/// GeometryBatch. Build and query perform zero per-record geom::Geometry
/// heap allocations; materialize() is the only record-granularity API
/// that allocates.
class DistributedIndex {
 public:
  struct CellIndex {
    std::vector<std::uint32_t> records;  ///< record ids into batch()
    /// Entry ids are positions into `records`. Mutable + dirty: addBatch
    /// only appends ids; the tree re-bulk-loads lazily on first query.
    mutable geom::RTree rtree;
    mutable bool stale = true;
  };

  [[nodiscard]] const GridSpec& grid() const { return grid_; }
  /// The partition map the records were exchanged under. Cell ids in
  /// cells_ are *partition* cells; the reference-point dedup must resolve
  /// through the same map or replicated records double-count. Defaults to
  /// uniform (ids == grid cells), matching fromBatch and pre-map shards.
  [[nodiscard]] const PartitionMap& partition() const { return map_; }
  [[nodiscard]] std::size_t cellCount() const { return cells_.size(); }
  [[nodiscard]] std::uint64_t localGeometries() const { return localGeometries_; }
  /// The records this index serves, in the pipeline's arena layout. Views
  /// into it (coordsOf/userData/...) live as long as the index — until the
  /// next addBatch(), whose splice may reallocate the arenas.
  [[nodiscard]] const geom::GeometryBatch& batch() const { return batch_; }

  /// Incremental adoption: splice `b` onto the index's batch and append
  /// its records (skipping kNoCell tombstones) to the per-cell id lists.
  /// Touched cells are marked stale for lazy re-bulk-loading. Callable any
  /// number of times — this is the appendable form of adoptBatches.
  void addBatch(geom::GeometryBatch&& b);

  /// Eagerly (re)build every stale per-cell R-tree (what a query would do
  /// lazily). The collective build calls this once so query latency — and
  /// the benches' build/query split — stays honest.
  void buildTrees() const;

  /// Count local records whose MBR intersects `query` and whose exact
  /// geometry intersects it too (filter + refine), deduplicated with the
  /// reference-point rule so global sums are exact. Allocation-free per
  /// record once trees are built: the exact test runs in place on the batch.
  [[nodiscard]] std::uint64_t queryCount(const geom::Envelope& query) const;

  /// Visit matching local records by batch record id; read them through
  /// batch() or materialize(id).
  void query(const geom::Envelope& query, const std::function<void(std::size_t)>& fn) const;

  /// Rebuild one matched record as a standalone Geometry (allocates).
  [[nodiscard]] geom::Geometry materialize(std::size_t id) const { return batch_.materialize(id); }

  /// Persist the rank's owned cells: the adopted batch split into shards
  /// of at most `maxShardBytes` encoded bytes (0 = one shard) plus a
  /// "<base>.manifest" blob recording the grid and shard count. The blobs
  /// survive on the store's volume, so a later run (or rank) can
  /// loadShards() without re-reading and re-exchanging the input.
  void saveShards(pfs::SpillStore& store, const std::string& base,
                  std::uint64_t maxShardBytes = 0) const;

  /// Rebuild an index from saveShards() output: reads the manifest,
  /// decodes every shard, and addBatch()es them in order. Record ids are
  /// assigned afresh (shard order), cell membership comes from the
  /// serialized cell tags. `rtreeFanout` 0 keeps the fanout recorded in
  /// the manifest. Throws util::Error on a missing/corrupt manifest or
  /// shard.
  ///
  /// Stale-manifest guard: when `cellOwner` is non-null it is the active
  /// cell→rank map and every decoded record must sit in a cell it
  /// assigns to `selfRank` — shards persisted under an older ownership
  /// (the map moved on: rebalancing, recovery re-homing) are rejected
  /// with util::Error instead of silently double-serving cells the
  /// current owner also serves. The recovery restore path applies the
  /// same validation (core::validateCellOwnership) to epoch deltas.
  static DistributedIndex loadShards(pfs::SpillStore& store, const std::string& base,
                                     std::size_t rtreeFanout = 0,
                                     const std::vector<int>* cellOwner = nullptr,
                                     int selfRank = -1);

  /// Build locally from an already cell-tagged batch — the single-rank
  /// form of the MPI build (the collective path produces exactly this per
  /// rank). Used by tests and the micro benches. Trees are built eagerly.
  static DistributedIndex fromBatch(geom::GeometryBatch&& batch, const GridSpec& grid,
                                    std::size_t rtreeFanout = 16);

 private:
  friend DistributedIndex buildDistributedIndex(mpi::Comm&, pfs::Volume&, const DatasetHandle&,
                                                const IndexingConfig&, struct IndexingStats*);

  GridSpec grid_;
  PartitionMap map_;  ///< uniform unless the build ran an adaptive scheme
  geom::GeometryBatch batch_;
  std::unordered_map<int, CellIndex> cells_;
  std::uint64_t localGeometries_ = 0;
  std::size_t fanout_ = 16;
};

struct IndexingStats {
  PhaseBreakdown phases;
  pfs::SpillStats spill;               ///< this rank's shard spill/reload volumes
  RebalanceStats balance;              ///< owned-cell migration volumes (rebalanceCells)
  RecoveryStats recovery;              ///< failure injection / recovery outcome
  std::uint64_t refinePeakBytes = 0;   ///< peak refine-serving bytes (FrameworkStats)
  std::uint64_t globalGeometries = 0;  ///< geometries indexed across ranks (incl. replicas)
  std::uint64_t cellsOwned = 0;
  GridSpec grid;
};

/// Build the distributed index over one dataset. Collective.
DistributedIndex buildDistributedIndex(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& data,
                                       const IndexingConfig& cfg, IndexingStats* stats = nullptr);

}  // namespace mvio::core
