#pragma once
// Distributed spatial indexing (paper Figure 20: "in-memory spatial
// indexing of Road Network (137 GB) ... using 320 processes, spatial
// indexing of 717M edges takes only 90 seconds").
//
// The pipeline is the single-layer variant of the framework: partitioned
// read, parse, grid projection, all-to-all exchange, then a bulk-loaded
// R-tree per owned cell. The index is batch-native end to end: it adopts
// the rank's post-exchange GeometryBatch wholesale (no per-record copies
// or materialized Geometry objects), per-cell R-trees bulk-load from the
// arena-resident MBRs, and queries run filter + exact refine directly
// against batch records (recordIntersectsBox). The resulting
// DistributedIndex supports batch rectangle queries against the local
// portion plus a helper to reduce global match counts.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/framework.hpp"
#include "geom/rtree.hpp"

namespace mvio::core {

struct IndexingConfig {
  FrameworkConfig framework;
  std::size_t rtreeFanout = 16;
};

/// Per-rank result: one R-tree per owned cell over records of one adopted
/// GeometryBatch. Build and query perform zero per-record geom::Geometry
/// heap allocations; materialize() is the only record-granularity API
/// that allocates.
class DistributedIndex {
 public:
  struct CellIndex {
    std::vector<std::uint32_t> records;  ///< record ids into batch()
    geom::RTree rtree;                   ///< entry ids are positions into `records`
  };

  [[nodiscard]] const GridSpec& grid() const { return grid_; }
  [[nodiscard]] std::size_t cellCount() const { return cells_.size(); }
  [[nodiscard]] std::uint64_t localGeometries() const { return localGeometries_; }
  /// The records this index serves, in the pipeline's arena layout. Views
  /// into it (coordsOf/userData/...) live as long as the index.
  [[nodiscard]] const geom::GeometryBatch& batch() const { return batch_; }

  /// Count local records whose MBR intersects `query` and whose exact
  /// geometry intersects it too (filter + refine), deduplicated with the
  /// reference-point rule so global sums are exact. Allocation-free per
  /// record: the exact test runs in place on the batch.
  [[nodiscard]] std::uint64_t queryCount(const geom::Envelope& query) const;

  /// Visit matching local records by batch record id; read them through
  /// batch() or materialize(id).
  void query(const geom::Envelope& query, const std::function<void(std::size_t)>& fn) const;

  /// Rebuild one matched record as a standalone Geometry (allocates).
  [[nodiscard]] geom::Geometry materialize(std::size_t id) const { return batch_.materialize(id); }

  /// Build locally from an already cell-tagged batch — the single-rank
  /// form of the MPI build (the collective path produces exactly this per
  /// rank). Used by tests and the micro benches.
  static DistributedIndex fromBatch(geom::GeometryBatch&& batch, const GridSpec& grid,
                                    std::size_t rtreeFanout = 16);

 private:
  friend DistributedIndex buildDistributedIndex(mpi::Comm&, pfs::Volume&, const DatasetHandle&,
                                                const IndexingConfig&, struct IndexingStats*);

  void addCell(int cell, const geom::BatchSpan& records, std::size_t fanout);
  void addCell(int cell, std::vector<std::uint32_t>&& ids, const geom::GeometryBatch& source,
               std::size_t fanout);

  GridSpec grid_;
  geom::GeometryBatch batch_;
  std::unordered_map<int, CellIndex> cells_;
  std::uint64_t localGeometries_ = 0;
};

struct IndexingStats {
  PhaseBreakdown phases;
  std::uint64_t globalGeometries = 0;  ///< geometries indexed across ranks (incl. replicas)
  std::uint64_t cellsOwned = 0;
  GridSpec grid;
};

/// Build the distributed index over one dataset. Collective.
DistributedIndex buildDistributedIndex(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& data,
                                       const IndexingConfig& cfg, IndexingStats* stats = nullptr);

}  // namespace mvio::core
