#pragma once
// Distributed spatial indexing (paper Figure 20: "in-memory spatial
// indexing of Road Network (137 GB) ... using 320 processes, spatial
// indexing of 717M edges takes only 90 seconds").
//
// The pipeline is the single-layer variant of the framework: partitioned
// read, parse, grid projection, all-to-all exchange, then a bulk-loaded
// R-tree per owned cell. The resulting DistributedIndex supports batch
// rectangle queries against the local portion plus a helper to reduce
// global match counts.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/framework.hpp"
#include "geom/rtree.hpp"

namespace mvio::core {

struct IndexingConfig {
  FrameworkConfig framework;
  std::size_t rtreeFanout = 16;
};

/// Per-rank result: one R-tree per owned cell, plus the geometries.
class DistributedIndex {
 public:
  struct CellIndex {
    std::vector<geom::Geometry> geometries;
    geom::RTree rtree;
  };

  [[nodiscard]] const GridSpec& grid() const { return grid_; }
  [[nodiscard]] std::size_t cellCount() const { return cells_.size(); }
  [[nodiscard]] std::uint64_t localGeometries() const { return localGeometries_; }

  /// Count local geometries whose MBR intersects `query` and whose exact
  /// geometry intersects it too (filter + refine), deduplicated with the
  /// reference-point rule so global sums are exact.
  [[nodiscard]] std::uint64_t queryCount(const geom::Envelope& query) const;

  /// Visit matching local geometries.
  void query(const geom::Envelope& query,
             const std::function<void(const geom::Geometry&)>& fn) const;

 private:
  friend DistributedIndex buildDistributedIndex(mpi::Comm&, pfs::Volume&, const DatasetHandle&,
                                                const IndexingConfig&, struct IndexingStats*);

  GridSpec grid_;
  std::unordered_map<int, CellIndex> cells_;
  std::uint64_t localGeometries_ = 0;
};

struct IndexingStats {
  PhaseBreakdown phases;
  std::uint64_t globalGeometries = 0;  ///< geometries indexed across ranks (incl. replicas)
  std::uint64_t cellsOwned = 0;
  GridSpec grid;
};

/// Build the distributed index over one dataset. Collective.
DistributedIndex buildDistributedIndex(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& data,
                                       const IndexingConfig& cfg, IndexingStats* stats = nullptr);

}  // namespace mvio::core
