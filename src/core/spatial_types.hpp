#pragma once
// Spatial data-aware MPI (paper §4.2, Table 2, Figure 6).
//
// Derived MPI datatypes for spatial primitives:
//   MPI_POINT  — 2 doubles (x, y)
//   MPI_LINE   — 4 doubles (segment endpoints x1,y1,x2,y2)
//   MPI_RECT   — 4 doubles (minX, minY, maxX, maxY) = an MBR
// plus compound nests (multi-point, fixed-size polygon) built from them,
// and the struct-flavoured MPI_RECT used by Figure 12's comparison of
// MPI_Type_create_struct vs MPI_Type_contiguous.
//
// Spatial reduction operators redefine MIN/MAX for lines and rectangles
// (smallest/largest by geometric measure) and add MPI_UNION on MBRs —
// used by the partitioner to derive the global grid bounds from per-rank
// local bounds with a single allreduce (Figure 6's usage pattern).

#include "geom/envelope.hpp"
#include "mpi/datatype.hpp"
#include "mpi/op.hpp"

namespace mvio::core {

/// POD mirror of a point, layout-compatible with MPI_POINT.
struct PointData {
  double x = 0, y = 0;
};

/// POD mirror of a line segment, layout-compatible with MPI_LINE.
struct LineData {
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0;

  [[nodiscard]] double length() const;
};

/// POD mirror of an MBR, layout-compatible with MPI_RECT.
struct RectData {
  double minX = 0, minY = 0, maxX = 0, maxY = 0;

  static RectData fromEnvelope(const geom::Envelope& e);
  [[nodiscard]] geom::Envelope toEnvelope() const;
  [[nodiscard]] double area() const;
  /// The identity element for MPI_UNION (a null rectangle).
  static RectData unionIdentity();
};

/// MPI_POINT: contiguous type of 2 doubles.
const mpi::Datatype& mpiPoint();
/// MPI_LINE: contiguous type of 4 doubles.
const mpi::Datatype& mpiLine();
/// MPI_RECT: contiguous type of 4 doubles.
const mpi::Datatype& mpiRect();
/// MPI_RECT defined via MPI_Type_create_struct over four named double
/// fields — identical typemap, different construction path (Figure 12).
const mpi::Datatype& mpiRectStruct();
/// Compound: fixed-size multi-point of n points (nested spatial type).
mpi::Datatype mpiMultiPoint(int n);
/// Compound: fixed-size polygon of n vertices (nested spatial type).
mpi::Datatype mpiFixedPolygon(int n);

/// MPI_MIN for spatial types: keeps the element with the smaller geometric
/// measure (length for lines, area for rects; lexicographic (x,y) for
/// points). Defined for MPI_POINT / MPI_LINE / MPI_RECT buffers.
const mpi::Op& spatialMin();
/// MPI_MAX counterpart.
const mpi::Op& spatialMax();
/// MPI_UNION: geometric union (bounding box) of MBRs; associative and
/// commutative, with the null rectangle as identity. RECT only.
const mpi::Op& rectUnion();

}  // namespace mvio::core
