#include "core/spatial_join.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "geom/rtree.hpp"
#include "geom/wkb.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace mvio::core {

namespace {

using util::fnv1a;

bool applyPredicate(JoinPredicate predicate, const geom::Geometry& r, const geom::Geometry& s) {
  switch (predicate) {
    case JoinPredicate::kIntersects:
      return geom::intersects(r, s);
    case JoinPredicate::kContains:
      return geom::contains(r, s);
  }
  return false;
}

/// RefineTask running the per-cell filter (R-tree) + refine (exact
/// predicate) with reference-point duplicate avoidance. Operates on batch
/// spans: the filter index bulk-loads from arena-resident envelopes, the
/// result keys hash WKB written straight from the arenas (no Geometry,
/// no per-pair WKB string), and the general geometry-vs-geometry
/// predicates are the one place the refine layer still materializes — at
/// most once per record, and only when a candidate pair survives
/// duplicate avoidance.
class JoinTask final : public RefineTask {
 public:
  JoinTask(const JoinConfig& cfg, std::vector<JoinPair>* results)
      : cfg_(cfg), results_(results) {}

  void refineCellBatch(const GridSpec& grid, int cell, const geom::BatchSpan& r,
                       const geom::BatchSpan& s) override {
    if (r.empty() || s.empty()) return;

    // Filter: bulk-load an R-tree straight from R's arena-resident MBRs.
    geom::RTree index(cfg_.rtreeFanout);
    index.bulkLoad(r);

    // Per-record key cache for this cell: computed lazily, batch-native.
    std::vector<std::uint64_t> rKeys(r.size());
    std::vector<char> rKeySet(r.size(), 0);
    auto keyOfR = [&](std::size_t id) {
      if (!rKeySet[id]) {
        rKeys[id] = geometryKey(r.batch(), r.recordIndex(id), scratch_);
        rKeySet[id] = 1;
      }
      return rKeys[id];
    };

    std::vector<std::optional<geom::Geometry>> rCache(r.size());
    for (std::size_t k = 0; k < s.size(); ++k) {
      const geom::Envelope& sEnv = s.envelope(k);
      std::optional<geom::Geometry> sg;
      std::uint64_t sKey = 0;
      bool sKeySet = false;
      index.visit(sEnv, [&](std::uint64_t id) {
        ++candidates_;
        const geom::Envelope& rEnv = r.envelope(id);
        // Duplicate avoidance: only the cell containing the reference
        // point (lower-left corner of the MBR intersection) reports.
        const geom::Coord ref{std::max(rEnv.minX(), sEnv.minX()), std::max(rEnv.minY(), sEnv.minY())};
        if (grid.cellOfPoint(ref) != cell) return;
        auto& rg = rCache[static_cast<std::size_t>(id)];
        if (!rg) rg = r.materialize(id);
        if (!sg) sg = s.materialize(k);
        if (!applyPredicate(cfg_.predicate, *rg, *sg)) return;
        ++pairs_;
        if (results_ != nullptr) {
          if (!sKeySet) {
            sKey = geometryKey(s.batch(), s.recordIndex(k), scratch_);
            sKeySet = true;
          }
          results_->push_back({keyOfR(static_cast<std::size_t>(id)), sKey});
        }
      });
    }
  }

  [[nodiscard]] std::uint64_t pairs() const { return pairs_; }
  [[nodiscard]] std::uint64_t candidates() const { return candidates_; }

  std::unique_ptr<RefineTask> makeWorker() override {
    auto w = std::make_unique<JoinTask>(cfg_, nullptr);
    if (results_ != nullptr) {
      w->ownResults_ = std::make_unique<std::vector<JoinPair>>();
      w->results_ = w->ownResults_.get();
    }
    return w;
  }

  void mergeWorker(RefineTask& worker) override {
    auto& w = static_cast<JoinTask&>(worker);
    pairs_ += w.pairs_;
    candidates_ += w.candidates_;
    w.pairs_ = 0;
    w.candidates_ = 0;
    if (results_ != nullptr && w.ownResults_ != nullptr) {
      results_->insert(results_->end(), w.ownResults_->begin(), w.ownResults_->end());
      w.ownResults_->clear();
    }
  }

 private:
  const JoinConfig& cfg_;
  std::vector<JoinPair>* results_;
  /// Worker clones stage pairs here; mergeWorker appends them to the main
  /// task's results in worker (= ascending cell) order.
  std::unique_ptr<std::vector<JoinPair>> ownResults_;
  std::string scratch_;  ///< reused WKB staging buffer for batch-native keys
  std::uint64_t pairs_ = 0;
  std::uint64_t candidates_ = 0;
};

}  // namespace

std::uint64_t geometryKey(const geom::Geometry& g) { return fnv1a(geom::writeWkb(g)); }

std::uint64_t geometryKey(const geom::GeometryBatch& b, std::size_t i, std::string& scratch) {
  scratch.clear();
  geom::appendWkb(b, i, scratch);
  return fnv1a(scratch);
}

JoinStats spatialJoin(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                      const DatasetHandle& s, const JoinConfig& cfg,
                      std::vector<JoinPair>* localResults) {
  JoinTask task(cfg, localResults);
  const FrameworkStats fw = runFilterRefine(comm, volume, r, &s, cfg.framework, task);

  JoinStats stats;
  stats.phases = fw.phases;
  stats.grid = fw.grid;
  stats.balance = fw.balance;
  stats.recovery = fw.recovery;
  stats.plan = fw.plan;
  stats.ownedRecords = fw.localR + fw.localS;
  if (fw.recovery.died) return stats;  // dead ranks join no further collective
  mpi::Comm active = fw.activeComm ? *fw.activeComm : comm;
  stats.cellsOwned = fw.cellsOwned;
  stats.localPairs = task.pairs();
  stats.globalPairs = active.allreduceSumU64(task.pairs());
  stats.candidatePairs = active.allreduceSumU64(task.candidates());
  return stats;
}

std::vector<JoinPair> serialJoin(const std::vector<geom::Geometry>& r,
                                 const std::vector<geom::Geometry>& s, JoinPredicate predicate) {
  std::vector<JoinPair> out;
  for (const auto& rg : r) {
    for (const auto& sg : s) {
      if (!rg.envelope().intersects(sg.envelope())) continue;
      if (!applyPredicate(predicate, rg, sg)) continue;
      out.push_back({geometryKey(rg), geometryKey(sg)});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mvio::core
