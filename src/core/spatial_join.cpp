#include "core/spatial_join.hpp"

#include <algorithm>

#include "geom/rtree.hpp"
#include "geom/wkb.hpp"
#include "util/error.hpp"

namespace mvio::core {

namespace {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool applyPredicate(JoinPredicate predicate, const geom::Geometry& r, const geom::Geometry& s) {
  switch (predicate) {
    case JoinPredicate::kIntersects:
      return geom::intersects(r, s);
    case JoinPredicate::kContains:
      return geom::contains(r, s);
  }
  return false;
}

/// RefineTask running the per-cell filter (R-tree) + refine (exact
/// predicate) with reference-point duplicate avoidance.
class JoinTask final : public RefineTask {
 public:
  JoinTask(const JoinConfig& cfg, std::vector<JoinPair>* results)
      : cfg_(cfg), results_(results) {}

  void refineCell(const GridSpec& grid, int cell, std::vector<geom::Geometry>& r,
                  std::vector<geom::Geometry>& s) override {
    if (r.empty() || s.empty()) return;

    // Filter: bulk-load an R-tree over R's MBRs.
    std::vector<geom::RTree::Entry> entries;
    entries.reserve(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      entries.push_back({r[i].envelope(), static_cast<std::uint64_t>(i)});
    }
    geom::RTree index(cfg_.rtreeFanout);
    index.bulkLoad(std::move(entries));

    for (const auto& sg : s) {
      index.query(sg.envelope(), [&](std::uint64_t id) {
        ++candidates_;
        const geom::Geometry& rg = r[static_cast<std::size_t>(id)];
        // Duplicate avoidance: only the cell containing the reference
        // point (lower-left corner of the MBR intersection) reports.
        const geom::Coord ref{std::max(rg.envelope().minX(), sg.envelope().minX()),
                              std::max(rg.envelope().minY(), sg.envelope().minY())};
        if (grid.cellOfPoint(ref) != cell) return;
        if (!applyPredicate(cfg_.predicate, rg, sg)) return;
        ++pairs_;
        if (results_ != nullptr) results_->push_back({geometryKey(rg), geometryKey(sg)});
      });
    }
  }

  [[nodiscard]] std::uint64_t pairs() const { return pairs_; }
  [[nodiscard]] std::uint64_t candidates() const { return candidates_; }

 private:
  const JoinConfig& cfg_;
  std::vector<JoinPair>* results_;
  std::uint64_t pairs_ = 0;
  std::uint64_t candidates_ = 0;
};

}  // namespace

std::uint64_t geometryKey(const geom::Geometry& g) { return fnv1a(geom::writeWkb(g)); }

JoinStats spatialJoin(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                      const DatasetHandle& s, const JoinConfig& cfg,
                      std::vector<JoinPair>* localResults) {
  JoinTask task(cfg, localResults);
  const FrameworkStats fw = runFilterRefine(comm, volume, r, &s, cfg.framework, task);

  JoinStats stats;
  stats.phases = fw.phases;
  stats.grid = fw.grid;
  stats.cellsOwned = fw.cellsOwned;
  stats.localPairs = task.pairs();
  stats.globalPairs = comm.allreduceSumU64(task.pairs());
  stats.candidatePairs = comm.allreduceSumU64(task.candidates());
  return stats;
}

std::vector<JoinPair> serialJoin(const std::vector<geom::Geometry>& r,
                                 const std::vector<geom::Geometry>& s, JoinPredicate predicate) {
  std::vector<JoinPair> out;
  for (const auto& rg : r) {
    for (const auto& sg : s) {
      if (!rg.envelope().intersects(sg.envelope())) continue;
      if (!applyPredicate(predicate, rg, sg)) continue;
      out.push_back({geometryKey(rg), geometryKey(sg)});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mvio::core
