#include "core/spatial_join.hpp"

#include <algorithm>
#include <optional>

#include "geom/rtree.hpp"
#include "geom/wkb.hpp"
#include "util/error.hpp"

namespace mvio::core {

namespace {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool applyPredicate(JoinPredicate predicate, const geom::Geometry& r, const geom::Geometry& s) {
  switch (predicate) {
    case JoinPredicate::kIntersects:
      return geom::intersects(r, s);
    case JoinPredicate::kContains:
      return geom::contains(r, s);
  }
  return false;
}

/// RefineTask running the per-cell filter (R-tree) + refine (exact
/// predicate) with reference-point duplicate avoidance. Operates on batch
/// spans: the filter index bulk-loads from arena-resident envelopes, and
/// the general geometry-vs-geometry predicates are the one place the
/// refine layer still materializes — at most once per record, and only
/// when a candidate pair survives duplicate avoidance.
class JoinTask final : public RefineTask {
 public:
  JoinTask(const JoinConfig& cfg, std::vector<JoinPair>* results)
      : cfg_(cfg), results_(results) {}

  void refineCellBatch(const GridSpec& grid, int cell, const geom::BatchSpan& r,
                       const geom::BatchSpan& s) override {
    if (r.empty() || s.empty()) return;

    // Filter: bulk-load an R-tree straight from R's arena-resident MBRs.
    geom::RTree index(cfg_.rtreeFanout);
    index.bulkLoad(r);

    std::vector<std::optional<geom::Geometry>> rCache(r.size());
    for (std::size_t k = 0; k < s.size(); ++k) {
      const geom::Envelope& sEnv = s.envelope(k);
      std::optional<geom::Geometry> sg;
      index.visit(sEnv, [&](std::uint64_t id) {
        ++candidates_;
        const geom::Envelope& rEnv = r.envelope(id);
        // Duplicate avoidance: only the cell containing the reference
        // point (lower-left corner of the MBR intersection) reports.
        const geom::Coord ref{std::max(rEnv.minX(), sEnv.minX()), std::max(rEnv.minY(), sEnv.minY())};
        if (grid.cellOfPoint(ref) != cell) return;
        auto& rg = rCache[static_cast<std::size_t>(id)];
        if (!rg) rg = r.materialize(id);
        if (!sg) sg = s.materialize(k);
        if (!applyPredicate(cfg_.predicate, *rg, *sg)) return;
        ++pairs_;
        if (results_ != nullptr) results_->push_back({geometryKey(*rg), geometryKey(*sg)});
      });
    }
  }

  [[nodiscard]] std::uint64_t pairs() const { return pairs_; }
  [[nodiscard]] std::uint64_t candidates() const { return candidates_; }

 private:
  const JoinConfig& cfg_;
  std::vector<JoinPair>* results_;
  std::uint64_t pairs_ = 0;
  std::uint64_t candidates_ = 0;
};

}  // namespace

std::uint64_t geometryKey(const geom::Geometry& g) { return fnv1a(geom::writeWkb(g)); }

JoinStats spatialJoin(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                      const DatasetHandle& s, const JoinConfig& cfg,
                      std::vector<JoinPair>* localResults) {
  JoinTask task(cfg, localResults);
  const FrameworkStats fw = runFilterRefine(comm, volume, r, &s, cfg.framework, task);

  JoinStats stats;
  stats.phases = fw.phases;
  stats.grid = fw.grid;
  stats.cellsOwned = fw.cellsOwned;
  stats.localPairs = task.pairs();
  stats.globalPairs = comm.allreduceSumU64(task.pairs());
  stats.candidatePairs = comm.allreduceSumU64(task.candidates());
  return stats;
}

std::vector<JoinPair> serialJoin(const std::vector<geom::Geometry>& r,
                                 const std::vector<geom::Geometry>& s, JoinPredicate predicate) {
  std::vector<JoinPair> out;
  for (const auto& rg : r) {
    for (const auto& sg : s) {
      if (!rg.envelope().intersects(sg.envelope())) continue;
      if (!applyPredicate(predicate, rg, sg)) continue;
      out.push_back({geometryKey(rg), geometryKey(sg)});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mvio::core
