#pragma once
// The distributed filter-and-refine framework (paper §4.3, Figure 7).
//
// Steps, executed collectively by every rank:
//   1. Partitioned read of the input file(s)     (file_partition.hpp)
//   2. Parse records into geometries             (parser.hpp)
//   3. Global grid from MPI_UNION of local MBRs  (grid.hpp)
//   4. Project geometries to overlapping cells   (filter: MBR vs cells)
//   5. All-to-all exchange for spatial locality  (exchange.hpp)
//   6. Per-cell refine tasks, scheduled by the rank-to-cell mapping
//
// Applications extend RefineTask — "spatial computation can be carried
// out by extending [the] refine interface that receives two collections
// of geometries in a cell". Spatial join (spatial_join.hpp), batch range
// query (range_query.hpp) and distributed indexing (indexing.hpp) are the
// shipped exemplars.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/exchange.hpp"
#include "core/file_partition.hpp"
#include "core/grid.hpp"
#include "core/parser.hpp"
#include "core/phases.hpp"
#include "pfs/volume.hpp"

namespace mvio::core {

/// One input layer: a file on a volume plus how to partition and parse it.
struct DatasetHandle {
  std::string path;
  const Parser* parser = nullptr;
  PartitionConfig partition;
};

struct FrameworkConfig {
  int gridCells = 1024;       ///< target number of grid cells (unit tasks)
  int windowPhases = 1;       ///< sliding-window exchange phases
  bool rtreeCellLocator = true;  ///< cell lookup via R-tree (paper) vs arithmetic
  io::Hints ioHints;          ///< MPI-IO hints for the underlying file opens
};

/// Refine callback: receives the two geometry collections of one cell (the
/// second is empty for single-layer pipelines). Implementations must apply
/// their own duplicate avoidance (grid.cellOfPoint on a reference point).
///
/// Override exactly one of the two hooks:
///  * refineCellBatch — the zero-copy interface. Envelopes and userData
///    read straight from the batch arenas; materialize only the records
///    the computation actually touches. The shipped join / range-query /
///    indexing tasks use this.
///  * refineCell — the legacy materialized interface; the default
///    refineCellBatch materializes both spans and forwards here.
class RefineTask {
 public:
  virtual ~RefineTask() = default;
  /// Default throws: a task overriding neither hook (e.g. a typo'd
  /// signature) must fail loudly, not silently produce zero results.
  virtual void refineCell(const GridSpec& grid, int cell, std::vector<geom::Geometry>& r,
                          std::vector<geom::Geometry>& s);
  virtual void refineCellBatch(const GridSpec& grid, int cell, const geom::BatchSpan& r,
                               const geom::BatchSpan& s);
};

struct FrameworkStats {
  PhaseBreakdown phases;        ///< this rank's per-phase virtual seconds
  ExchangeStats exchange;       ///< this rank's exchange volumes
  ParseStats parseR, parseS;
  PartitionResult ioR, ioS;
  GridSpec grid;
  std::uint64_t cellsOwned = 0;
  std::uint64_t localR = 0, localS = 0;  ///< geometries held after exchange
};

/// Run the full pipeline. `s` may be null (single-layer workloads such as
/// indexing). Collective: all ranks of `comm` must call.
FrameworkStats runFilterRefine(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                               const DatasetHandle* s, const FrameworkConfig& cfg, RefineTask& task);

}  // namespace mvio::core
