#pragma once
// The distributed filter-and-refine framework (paper §4.3, Figure 7).
//
// Steps, executed collectively by every rank:
//   1. Partitioned read of the input file(s)     (file_partition.hpp)
//   2. Parse records into geometries             (parser.hpp)
//   3. Global grid from MPI_UNION of local MBRs  (grid.hpp)
//   4. Project geometries to overlapping cells   (filter: MBR vs cells)
//   5. All-to-all exchange for spatial locality  (exchange.hpp)
//   6. Per-cell refine tasks, scheduled by the rank-to-cell mapping
//
// The pipeline runs in bounded-memory *rounds* (DESIGN.md §7): each rank
// reads and parses its partition in StreamConfig::chunkBytes chunks,
// steps 4–5 execute once per chunk (a multi-round exchange closed by a
// final empty round), and received records accumulate into the rank's
// owned batch. Whenever a stage's working set exceeds
// StreamConfig::memoryBudget, pending batches are spilled to a
// pfs::SpillStore as BatchShards and reloaded when their round (or the
// refine phase) needs them. The default StreamConfig — one round,
// unlimited budget — is exactly the classic one-shot pass.
//
// Applications extend RefineTask — "spatial computation can be carried
// out by extending [the] refine interface that receives two collections
// of geometries in a cell". The collections arrive as BatchSpan views
// into the rank's post-exchange GeometryBatch (never as materialized
// Geometry vectors). Spatial join (spatial_join.hpp), batch range query
// (range_query.hpp), grid overlay (overlay.hpp) and distributed indexing
// (indexing.hpp) are the shipped exemplars.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/exchange.hpp"
#include "core/file_partition.hpp"
#include "core/grid.hpp"
#include "core/parser.hpp"
#include "core/phases.hpp"
#include "pfs/spill_store.hpp"
#include "pfs/volume.hpp"

namespace mvio::core {

/// One input layer: a file on a volume plus how to partition and parse it.
struct DatasetHandle {
  std::string path;
  const Parser* parser = nullptr;
  PartitionConfig partition;
};

/// Streaming-round controls (DESIGN.md §7). The defaults reproduce the
/// one-shot pipeline: a single round over the whole partition, nothing
/// ever spilled.
struct StreamConfig {
  /// Per-rank read/parse chunk size; 0 = one-shot (whole partition in one
  /// round). When set it becomes the per-iteration file block size, so it
  /// must still fit the largest record (PartitionConfig::maxGeometryBytes
  /// semantics apply unchanged).
  std::uint64_t chunkBytes = 0;
  /// Per-rank byte bound on each streaming stage's resident batch set
  /// (pending parsed chunks; the accumulating owned batch). 0 = unbounded.
  /// When a stage exceeds it, batches spill to the volume as BatchShards
  /// and reload on demand. The bound is per stage structure, not a strict
  /// whole-process cap: one in-flight chunk plus one reloading shard are
  /// always resident.
  std::uint64_t memoryBudget = 0;
  /// Modelled node-local scratch bandwidth for spill writes + reloads
  /// (charged to the rank clock; lands in PhaseBreakdown::spill).
  double spillBytesPerSecond = 2.0e9;
  /// Volume directory for spill shards; each rank uses
  /// "<spillDir>/rank<worldRank>". Scratch blobs are removed when the run
  /// finishes.
  std::string spillDir = "__spill";
};

struct FrameworkConfig {
  int gridCells = 1024;       ///< target number of grid cells (unit tasks)
  int windowPhases = 1;       ///< sliding-window exchange phases
  bool rtreeCellLocator = true;  ///< cell lookup via R-tree (paper) vs arithmetic
  io::Hints ioHints;          ///< MPI-IO hints for the underlying file opens
  StreamConfig stream;        ///< chunked-round + spill controls
};

/// Refine callback: receives the two record collections of one cell as
/// batch-span views (the second is empty for single-layer pipelines).
/// Implementations must apply their own duplicate avoidance
/// (grid.cellOfPoint on a reference point).
///
/// The interface is batch-native: envelopes, userData, and the exact
/// predicates (BatchSpan::intersectsBox / clippedMeasure) read straight
/// from the batch arenas; materialize only the records a general
/// geometry-vs-geometry test actually needs. The spans are valid only for
/// the duration of the call — a task whose output must outlive the
/// pipeline (e.g. the distributed index) records the *record indices* and
/// takes ownership of the underlying batches via adoptBatches().
class RefineTask {
 public:
  virtual ~RefineTask() = default;
  virtual void refineCellBatch(const GridSpec& grid, int cell, const geom::BatchSpan& r,
                               const geom::BatchSpan& s) = 0;
  /// Offers ownership of the rank's post-exchange batches, after the last
  /// refineCellBatch. Record indices seen through the spans stay valid in
  /// the adopted batches (moving a batch moves its arenas, it never
  /// reindexes records). The hook is *appendable*: the framework calls it
  /// once per run, but streaming consumers (shard reloads,
  /// DistributedIndex::loadShards) deliver batches incrementally, so an
  /// implementation that keeps state must splice subsequent batches onto
  /// what it already holds rather than replace it. The default discards
  /// the batches, which is correct for tasks that fully reduce in refine.
  virtual void adoptBatches(geom::GeometryBatch&& r, geom::GeometryBatch&& s);
};

struct FrameworkStats {
  PhaseBreakdown phases;        ///< this rank's per-phase virtual seconds
  ExchangeStats exchange;       ///< this rank's exchange volumes
  ParseStats parseR, parseS;
  PartitionResult ioR, ioS;
  GridSpec grid;
  pfs::SpillStats spill;        ///< this rank's shard spill/reload volumes
  std::uint64_t cellsOwned = 0;
  std::uint64_t localR = 0, localS = 0;  ///< geometries held after exchange
};

/// Run the full pipeline. `s` may be null (single-layer workloads such as
/// indexing). Collective: all ranks of `comm` must call.
FrameworkStats runFilterRefine(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                               const DatasetHandle* s, const FrameworkConfig& cfg, RefineTask& task);

}  // namespace mvio::core
