#pragma once
// The distributed filter-and-refine framework (paper §4.3, Figure 7).
//
// Steps, executed collectively by every rank:
//   1. Partitioned read of the input file(s)     (file_partition.hpp)
//   2. Parse records into geometries             (parser.hpp)
//   3. Global grid from MPI_UNION of local MBRs  (grid.hpp)
//   4. Project geometries to overlapping cells   (filter: MBR vs cells)
//   5. All-to-all exchange for spatial locality  (exchange.hpp)
//      5b. optional skew-aware owned-cell rebalancing: LPT reassignment
//          of cells over globally-reduced loads + point-to-point shard
//          migration (exchange.hpp, FrameworkConfig::rebalanceCells)
//   6. Per-cell refine tasks in ascending cell-id order, scheduled by
//      the (possibly rebalanced) rank-to-cell mapping
//
// The pipeline runs in bounded-memory *rounds* (DESIGN.md §7–8): each
// rank reads and parses its partition in StreamConfig::chunkBytes chunks,
// steps 4–5 execute once per chunk (a multi-round exchange closed by a
// final empty round), and received records accumulate into the rank's
// owned CellStore (core/cell_store.hpp). Whenever a stage's working set
// exceeds StreamConfig::memoryBudget, pending batches are spilled to a
// pfs::SpillStore as BatchShards — the owned set as *cell-sorted*
// segments — and the refine phase streams cell by cell through a bounded
// external-merge window instead of reassembling the owned batch. The
// default StreamConfig — one round, unlimited budget — is exactly the
// classic one-shot pass with a fully resident refine.
//
// Applications extend RefineTask — "spatial computation can be carried
// out by extending [the] refine interface that receives two collections
// of geometries in a cell". The collections arrive as BatchSpan views
// into the rank's post-exchange GeometryBatch (never as materialized
// Geometry vectors). Spatial join (spatial_join.hpp), batch range query
// (range_query.hpp), grid overlay (overlay.hpp) and distributed indexing
// (indexing.hpp) are the shipped exemplars.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/exchange.hpp"
#include "core/file_partition.hpp"
#include "core/format.hpp"
#include "core/grid.hpp"
#include "core/parser.hpp"
#include "core/partition_map.hpp"
#include "core/phases.hpp"
#include "pfs/spill_store.hpp"
#include "pfs/volume.hpp"

namespace mvio::core {

/// One input layer: a file on a volume plus how to partition and parse it.
/// Exactly one of `parser` / `format` must be set. `parser` is the classic
/// delimited-text entry point (WKT/CSV/user parsers, wrapped internally in
/// a TextFormatReader); `format` selects any registered FormatReader —
/// including the framed binary WKB fast path, whose boundary resolution
/// walks record length headers and whose parseChunk decodes straight into
/// the batch arenas (DESIGN.md §12).
struct DatasetHandle {
  std::string path;
  const Parser* parser = nullptr;
  PartitionConfig partition;
  const FormatReader* format = nullptr;
};

/// Checkpoint GC + epoch compaction (DESIGN.md §11). When enabled, after
/// every `everyEpochs`-th *valid* (untorn) seal each rank folds its delta
/// shards for epochs `oldBase+1 .. E - keepEpochs` — plus any previous
/// base — into one checksummed base checkpoint, commits it by writing a
/// `base.manifest`, and then garbage-collects the folded delta shards,
/// the superseded base, and the ingest chunk blobs for every round the
/// new base covers. Recovery loads one base + the bounded delta tail
/// instead of scanning the full epoch history; the per-rank epoch
/// manifests and global seals are kept (they are tiny and the seal scan
/// validates against them). Bytes written by the fold land in
/// PhaseBreakdown::{compaction, compactionBytes}; bytes deleted land in
/// PhaseBreakdown::reclaimedBytes.
struct CompactionPolicy {
  /// Fold every N valid sealed epochs (0 = compaction disabled).
  std::uint64_t everyEpochs = 0;
  /// Epochs kept as deltas behind the newest seal. keepEpochs = 1 at
  /// seal E folds up to E-1 so a torn seal E still has a delta tail to
  /// fall back through.
  std::uint64_t keepEpochs = 1;
};

/// Streaming-round controls (DESIGN.md §7). The defaults reproduce the
/// one-shot pipeline: a single round over the whole partition, nothing
/// ever spilled.
struct StreamConfig {
  /// Per-rank read/parse chunk size; 0 = one-shot (whole partition in one
  /// round). When set it becomes the per-iteration file block size, so it
  /// must still fit the largest record (PartitionConfig::maxGeometryBytes
  /// semantics apply unchanged).
  std::uint64_t chunkBytes = 0;
  /// Per-rank byte bound on each streaming stage's resident batch set
  /// (pending parsed chunks; the accumulating owned batch). 0 = unbounded.
  /// When a stage exceeds it, batches spill to the volume as BatchShards
  /// and reload on demand. The bound is per stage structure, not a strict
  /// whole-process cap: one in-flight chunk plus one reloading shard are
  /// always resident.
  std::uint64_t memoryBudget = 0;
  /// Modelled node-local scratch bandwidth for spill writes + reloads
  /// (charged to the rank clock; lands in PhaseBreakdown::spill).
  double spillBytesPerSecond = 2.0e9;
  /// When true the scratch directory lives on the parallel filesystem:
  /// spill writes and reloads are priced by the Volume's storage model
  /// (pfs::SpillPricer::onVolume — OST/NSD queue contention with every
  /// other rank's traffic) instead of the flat node-local rate above.
  bool spillOnPfs = false;
  /// Volume directory for spill shards; each rank uses
  /// "<spillDir>/rank<worldRank>". Scratch blobs are removed when the run
  /// finishes.
  std::string spillDir = "__spill";

  // ---- Checkpoint/recovery (DESIGN.md §9) -----------------------------
  /// Seal a durable epoch checkpoint every N exchange data rounds
  /// (0 = no checkpoints). When set, each parsed chunk is also written to
  /// a durable per-rank chunk log at ingest time (the replay source), and
  /// at every boundary each rank persists the records that arrived since
  /// the previous epoch as BatchShard blobs plus a per-rank manifest;
  /// rank 0 then seals the epoch with a checksummed global manifest.
  /// Torn or partial epochs are detected at recovery time and skipped.
  std::uint64_t checkpointEveryRounds = 0;
  /// Volume directory for durable checkpoint state: per-rank blobs under
  /// "<checkpointDir>/rank<worldRank>", global epoch seals under
  /// "<checkpointDir>/global". Unlike spillDir, blobs survive the run.
  std::string checkpointDir = "__ckpt";
  /// Torn-write injection (tests): the seal of this epoch is written
  /// truncated, as if the writer died mid-write. Recovery must reject it
  /// and fall back to the previous sealed epoch. 0 = off.
  std::uint64_t tearEpochSeal = 0;
  /// Checkpoint GC + epoch compaction policy (DESIGN.md §11). Disabled by
  /// default: every sealed epoch stays on the volume forever.
  CompactionPolicy compaction;
  /// Replay strategy after a failure: when true (default) the survivors
  /// split the unsealed chunk log by source rank and exchange re-projected
  /// records (replay read volume O(log) in aggregate); when false every
  /// survivor reads all ranks' logs and filters locally (the PR-5
  /// communication-free path, O(ranks·log) reads — kept as the
  /// equivalence reference). Results are bit-identical either way.
  bool shardedReplay = true;

  // ---- Round overlap (DESIGN.md §10) ----------------------------------
  /// Double-buffered streaming: round N's exchange overlaps round N+1's
  /// parse + grid projection and the owned-store flush of round N−1's
  /// arrivals. Execution order — and therefore every result bit — is
  /// unchanged; the overlap is applied in the sim-clock accounting, which
  /// replays each chunk's deferred prep time through a two-deep pipeline
  /// recurrence and charges only the *exposed* remainder to its phase
  /// (the hidden seconds land in PhaseBreakdown::overlapped). Requires
  /// chunkBytes > 0; ignored in one-shot runs, which have no rounds to
  /// overlap.
  bool overlapRounds = false;
};

struct FrameworkConfig {
  int gridCells = 1024;       ///< target number of grid cells (unit tasks)
  int windowPhases = 1;       ///< sliding-window exchange phases
  /// Per-rank worker-pool size (util/thread_pool.hpp): chunk parsing and
  /// the cell-major refine loop fan out over this many threads, with the
  /// rank clock charged by each region's critical path. 1 = the classic
  /// serial rank (no pool is created). Results are bit-identical at any
  /// value — parallel parse splices slice batches back in slice order and
  /// parallel refine visits ascending contiguous cell blocks merged in
  /// worker order (DESIGN.md §10).
  int threadsPerRank = 1;
  bool rtreeCellLocator = true;  ///< cell lookup via R-tree (paper) vs arithmetic
  /// Sample-based adaptive partitioning (DESIGN.md §13): a pilot pass
  /// samples record envelopes during ingest, the samples are allgathered,
  /// and every rank builds the same variable-extent PartitionMap —
  /// quadtree refinement of hot regions or Hilbert-curve range splits —
  /// that then drives projection, exchange, ownership, checkpoint seals
  /// and rebalancing end to end. The default (kUniform) is the classic
  /// uniform grid with zero overhead: no pilot pass, no sample exchange,
  /// and the map's uniform fast path keeps every lookup branch-free.
  PartitionerConfig partition;
  io::Hints ioHints;          ///< MPI-IO hints for the underlying file opens
  StreamConfig stream;        ///< chunked-round + spill controls
  /// Skew-aware owned-cell rebalancing: after the exchange phase, reduce
  /// per-cell record counts globally, recompute the cell→rank map with a
  /// greedy LPT pass (lptAssignCells) and migrate leaving cells between
  /// ranks as checksummed shard blobs (migrateShards). The refine phase
  /// and FrameworkStats::cellOwner then follow the new map. Default off:
  /// ownership stays round-robin, nothing moves.
  ///
  /// The migration respects StreamConfig::memoryBudget: leaving cells are
  /// extracted and shipped in bounded passes, so a rank stages at most
  /// roughly one budget share of outgoing records (plus one cell of
  /// slack for a cell larger than the budget) at a time.
  bool rebalanceCells = false;
  /// Largest encoded migration blob (migrateShards bound).
  std::uint64_t migrationBlobBytes = 1ull << 20;
  /// Adaptive rebalance trigger: the migration pass only runs when the
  /// allreduced max/mean per-rank load ratio is at least this value.
  /// 1.0 (or anything ≤ 1) keeps the unconditional behaviour; e.g. 1.5
  /// skips the pass — and its wire traffic — when the owned loads are
  /// already within 50% of the mean. The measured imbalance and the
  /// decision are recorded in RebalanceStats either way.
  double rebalanceThreshold = 1.0;
  /// Failure injection: world ranks that die at the kill point (fail-stop;
  /// requires StreamConfig::checkpointEveryRounds > 0 so survivors can
  /// recover). Empty = no injection. Legacy single-wave form: every rank
  /// listed here dies together after killPoint.afterRound rounds —
  /// equivalent to a failSchedule entry with duringRecoveryPass 0.
  std::vector<int> failRanks;
  /// When the named ranks die: after this many exchange data rounds.
  sim::KillPoint killPoint;
  /// General fault schedule: each event names a rank, the data-round
  /// boundary it dies at, and (for cascading failures) which recovery
  /// pass it dies during. Events sharing a boundary/pass die together;
  /// events at later boundaries or passes are detected by the survivors'
  /// next detection allgather and trigger another recovery pass over the
  /// shrunken communicator. May be combined with failRanks/killPoint
  /// (which contribute pass-0 events). A rank may die at most once and
  /// at least one rank must survive the whole schedule.
  std::vector<sim::FailureEvent> failSchedule;
};

/// Refine callback: receives the two record collections of one cell as
/// batch-span views (the second is empty for single-layer pipelines).
/// Implementations must apply their own duplicate avoidance
/// (grid.cellOfPoint on a reference point).
///
/// The interface is batch-native: envelopes, userData, and the exact
/// predicates (BatchSpan::intersectsBox / clippedMeasure) read straight
/// from the batch arenas; materialize only the records a general
/// geometry-vs-geometry test actually needs. The spans are valid only for
/// the duration of the call — a task whose output must outlive the
/// pipeline (e.g. the distributed index) records the *record indices* and
/// takes ownership of the underlying batches via adoptBatches().
class RefineTask {
 public:
  virtual ~RefineTask() = default;
  virtual void refineCellBatch(const GridSpec& grid, int cell, const geom::BatchSpan& r,
                               const geom::BatchSpan& s) = 0;
  /// Offers ownership of the rank's post-exchange batches. Record indices
  /// seen through the spans stay valid in the adopted batches (moving a
  /// batch moves its arenas, it never reindexes records). The hook is
  /// *appendable*: in the one-shot/resident regime the framework calls it
  /// once, after the last refineCellBatch, with the whole owned batch
  /// (records migrated away by rebalancing are tombstoned with kNoCell);
  /// in the streaming regime (StreamConfig::memoryBudget set) it is
  /// called once per refined cell with that cell's records — and other
  /// streaming consumers (shard reloads, DistributedIndex::loadShards)
  /// deliver incrementally too — so an implementation that keeps state
  /// must splice subsequent batches onto what it already holds rather
  /// than replace it. The default discards the batches, which is correct
  /// for tasks that fully reduce in refine.
  virtual void adoptBatches(geom::GeometryBatch&& r, geom::GeometryBatch&& s);

  // ---- Parallel refine (FrameworkConfig::threadsPerRank > 1) ----------
  // The framework fans the cell-major loop out by cloning one *worker*
  // task per pool thread and running refineCellBatch on the clones over
  // disjoint, contiguous, ascending cell blocks. After each block group
  // it folds every worker back with mergeWorker() in worker order — which
  // is ascending cell order — so the main task accumulates exactly the
  // state the serial visit would have produced. Workers only ever see
  // refineCellBatch (adoption always happens on the main task), and a
  // merge must drain the worker so it can be reused for the next group.

  /// A fresh worker clone with private scratch, or nullptr (the default)
  /// to opt out — the framework then refines serially regardless of
  /// threadsPerRank.
  [[nodiscard]] virtual std::unique_ptr<RefineTask> makeWorker() { return nullptr; }
  /// Fold `worker`'s accumulated per-cell results into this task and
  /// reset the worker for reuse. Called in worker order after every block
  /// group; `worker` is always an object this task's makeWorker returned.
  virtual void mergeWorker(RefineTask& worker);
};

/// What the skew-aware rebalancing pass did for this rank (all zero when
/// FrameworkConfig::rebalanceCells is off).
struct RebalanceStats {
  ShardTransportStats transport;         ///< wire volumes, both layers
  std::uint64_t ownedRecordsBefore = 0;  ///< this rank's records at exchange end
  std::uint64_t ownedRecordsAfter = 0;   ///< after migration
  std::uint64_t cellsMoved = 0;          ///< cells that changed owner (global count)
  /// Allreduced max/mean per-rank load ratio measured before the pass
  /// (1.0 = perfectly balanced; 0 when the pass never ran or the grid
  /// holds no records).
  double imbalance = 0;
  /// True when the measured imbalance stayed below
  /// FrameworkConfig::rebalanceThreshold and the migration was skipped.
  bool skipped = false;
  /// Bounded migration passes executed, summed over both layers (one per
  /// layer when each leaving set fit one StreamConfig::memoryBudget
  /// share, or when no budget is set).
  std::uint64_t migrationPasses = 0;
  /// Cost-model verdict on the LPT proposal (adaptive partition schemes
  /// only; see PartitionCostModel). When the projected migration seconds
  /// outweigh the projected refine seconds saved, the pass is skipped and
  /// `skipped` + `costGated` are both set.
  bool costGated = false;
  double costGainSeconds = 0;     ///< projected refine seconds the move saves
  double costMigrateSeconds = 0;  ///< projected wire seconds the move costs
};

/// What the checkpoint/recovery subsystem did for this rank (all zero
/// when StreamConfig::checkpointEveryRounds is 0 and no failure was
/// injected). Byte/time volumes live in PhaseBreakdown::{checkpoint,
/// recovery, checkpointBytes, recoveryBytes, recoveryRounds}.
struct RecoveryStats {
  /// This rank was killed by the injection hook: it left the job at the
  /// kill point and its FrameworkStats describe only the rounds it lived
  /// through. Its refine task never ran.
  bool died = false;
  /// A failure struck and this rank ran the recovery protocol.
  bool recovered = false;
  std::uint64_t deadRanks = 0;        ///< ranks lost across all waves (cumulative)
  std::uint64_t epochUsed = 0;        ///< sealed epoch restored from (0 = none valid)
  std::uint64_t restoredRecords = 0;  ///< records this rank reloaded from dead ranks' epochs
  std::uint64_t replayedRecords = 0;  ///< records this rank re-derived from the chunk log
  /// Recovery passes this rank ran (1 for a single failure wave; each
  /// cascading death detected mid-recovery adds another pass).
  std::uint64_t recoveryPasses = 0;
};

struct FrameworkStats {
  PhaseBreakdown phases;        ///< this rank's per-phase virtual seconds
  ExchangeStats exchange;       ///< this rank's exchange volumes
  ParseStats parseR, parseS;
  PartitionResult ioR, ioS;
  GridSpec grid;
  /// The cell map the run executed under. Uniform scheme: the identity
  /// over `grid`. Adaptive schemes: the variable-extent map every rank
  /// built from the allgathered pilot samples — cell ids seen by
  /// exchange, CellStore, ownership, seals and cellOwner are *partition*
  /// ids (groupings of whole uniform cells); refine still sees uniform
  /// cells via the framework's sub-bucketing dispatch.
  PartitionMap partition;
  /// The pilot pass's cost-model prediction (adaptive schemes; zeroed
  /// under uniform). bench_partition checks it against the measured run.
  PartitionPlan plan;
  pfs::SpillStats spill;        ///< this rank's shard spill/reload volumes
  RebalanceStats balance;       ///< owned-cell migration volumes (rebalanceCells)
  RecoveryStats recovery;       ///< failure injection / recovery outcome
  /// The communicator the pipeline finished on. Engaged only after a
  /// recovery shrank the job to the survivors — consumers must run their
  /// post-pipeline collectives (result reductions, the overlay's
  /// collective write) on it instead of the launch communicator, whose
  /// dead ranks will never participate again. Dead ranks (recovery.died)
  /// must skip those collectives entirely.
  std::optional<mpi::Comm> activeComm;
  /// Post-rebalance / post-recovery cell→rank map in *world* ranks,
  /// identical on every live rank. Empty when neither rebalancing nor
  /// recovery ran — ownership is then roundRobinOwner, which consumers
  /// with per-owned-cell output (the overlay writer) fall back to.
  std::vector<int> cellOwner;
  /// Peak bytes resident in the refine phase's serving structures (merge
  /// window + tail + current cell in the streaming regime, summed over
  /// both layer stores — two-layer runs split the budget between them;
  /// the owned batch in the resident regime). Streaming runs keep this
  /// within StreamConfig::memoryBudget, plus the one-resident-cell slack:
  /// a cell must be resident in full to be refined, so a single cell
  /// larger than its store's budget share exceeds the bound by exactly
  /// its own size.
  std::uint64_t refinePeakBytes = 0;
  std::uint64_t cellsOwned = 0;
  std::uint64_t localR = 0, localS = 0;  ///< geometries held after exchange
};

/// Phase-4 grid projection: map every record of `geoms` to its
/// overlapping partition cells in place (a k-cell geometry appends k-1
/// replicas; no-cell records are tombstoned with kNoCell). `locator`,
/// when given, resolves uniform cells via the R-tree of cell boundaries
/// and the map translates them. Deterministic for a given map — the
/// recovery replay re-derives lost exchange rounds by re-running it over
/// the durable chunk log.
geom::GeometryBatch projectToCells(const PartitionMap& map, const CellLocator* locator,
                                   geom::GeometryBatch&& geoms);

/// Run the full pipeline. `s` may be null (single-layer workloads such as
/// indexing). Collective: all ranks of `comm` must call.
FrameworkStats runFilterRefine(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                               const DatasetHandle* s, const FrameworkConfig& cfg, RefineTask& task);

}  // namespace mvio::core
