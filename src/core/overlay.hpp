#pragma once
// Grid-based overlay with row-major collective output — the scenario that
// motivates the paper's non-contiguous write support (Figure 4): "in a
// grid-based polygon overlay operation, the output needs to be written to
// a single file in which the storage order corresponds to that of the
// global grid data layout in row-major order. Since the spatial data is
// distributed among processes, this requires non-contiguous file writing.
// This ensures that the output file is same as if produced sequentially."
//
// The overlay product is a per-cell coverage raster: every geometry
// replicated to a cell is clipped to that cell (geom/clip.hpp), so the
// per-cell measures of each layer sum exactly to the layer's global
// measure — replication introduces no double counting. Each rank owns a
// set of grid cells and writes its records into the shared output file
// through a non-contiguous MPI file view with writeAtAll (Level 3): a
// regular strided view under the default round-robin ownership, or an
// indexed view over the rank's owned-cell list when skew-aware
// rebalancing (FrameworkConfig::rebalanceCells) has reassigned cells —
// either way the output file is identical to the sequentially produced
// raster.

#include <cstdint>
#include <string>

#include "core/framework.hpp"

namespace mvio::core {

/// One output record per grid cell (row-major in the output file).
struct CellCoverage {
  double measureR = 0;  ///< layer R: area (polygons) / length (lines) / count (points)
  double measureS = 0;  ///< layer S, or 0 for single-layer runs
};

struct OverlayConfig {
  FrameworkConfig framework;
  std::string outputPath = "overlay_coverage.bin";  ///< created on the volume
};

struct OverlayStats {
  PhaseBreakdown phases;  ///< this rank's breakdown (write time lands in `comm`)
  GridSpec grid;
  RebalanceStats balance;   ///< owned-cell migration volumes (rebalanceCells)
  RecoveryStats recovery;   ///< failure injection / recovery outcome
  double totalR = 0;  ///< global sum of layer-R measures over all cells
  double totalS = 0;
  std::uint64_t cellsWritten = 0;  ///< this rank's output records
};

/// Run the overlay: filter-refine with a coverage-accumulating task, then
/// one collective non-contiguous write of the row-major coverage raster.
/// `s` may be null. Collective.
OverlayStats gridCoverageOverlay(mpi::Comm& comm, pfs::Volume& volume, const DatasetHandle& r,
                                 const DatasetHandle* s, const OverlayConfig& cfg);

}  // namespace mvio::core
