#include "osm/datasets.hpp"

#include "util/error.hpp"

namespace mvio::osm {

namespace {

constexpr std::uint64_t kMB = 1000ull * 1000ull;
constexpr std::uint64_t kGB = 1000ull * kMB;

const DatasetInfo kCatalog[] = {
    {"cemetery", "Polygon", 56 * kMB, 193'000, 2.1},
    {"lakes", "Polygon", 9 * kGB, 8'000'000, 328.0},
    {"roads", "Polygon", 24 * kGB, 72'000'000, 786.0},
    {"all_objects", "Polygon", 92 * kGB, 263'000'000, 4728.0},
    {"road_network", "Line", 137 * kGB, 717'000'000, 2873.0},
    {"all_nodes", "Point", 96 * kGB, 2'700'000'000ull, 3782.0},
};

}  // namespace

const DatasetInfo& datasetInfo(DatasetId id) { return kCatalog[static_cast<int>(id)]; }

SynthSpec datasetSpec(DatasetId id, std::uint64_t seed) {
  SynthSpec s;
  s.seed = seed;
  switch (id) {
    case DatasetId::kCemetery:
      // Small urban polygons, ~290 B/record: modest vertex counts.
      s.polygonWeight = 1.0;
      s.minVertices = 4;
      s.maxVertices = 64;
      s.vertexAlpha = 2.5;
      s.minRadius = 5e-4;
      s.maxRadius = 0.01;
      s.space.clusters = 96;
      break;
    case DatasetId::kLakes:
      // ~1.1 KB/record: heavier tails, shorelines get big.
      s.polygonWeight = 1.0;
      s.minVertices = 8;
      s.maxVertices = 4096;
      s.vertexAlpha = 1.9;
      s.minRadius = 1e-3;
      s.maxRadius = 1.5;
      s.space.clusters = 32;
      break;
    case DatasetId::kRoads:
      // Table 3 lists Roads as polygonal; ~330 B/record.
      s.polygonWeight = 1.0;
      s.minVertices = 4;
      s.maxVertices = 256;
      s.vertexAlpha = 2.4;
      s.minRadius = 5e-4;
      s.maxRadius = 0.05;
      s.space.clusters = 64;
      break;
    case DatasetId::kAllObjects:
      // Mixed planet extract, polygon-dominated, ~350 B/record.
      s.polygonWeight = 0.7;
      s.lineWeight = 0.2;
      s.pointWeight = 0.1;
      s.minVertices = 4;
      s.maxVertices = 512;
      s.vertexAlpha = 2.3;
      s.minRadius = 5e-4;
      s.maxRadius = 0.2;
      s.space.clusters = 48;
      break;
    case DatasetId::kRoadNetwork:
      // Line edges, ~190 B/record: short polylines.
      s.polygonWeight = 0.0;
      s.lineWeight = 1.0;
      s.minSegments = 2;
      s.maxSegments = 24;
      s.segmentAlpha = 2.2;
      s.stepLength = 0.005;
      s.space.clusters = 96;
      break;
    case DatasetId::kAllNodes:
      // GPS nodes, ~35 B/record; attributes kept terse by precision.
      s.polygonWeight = 0.0;
      s.pointWeight = 1.0;
      s.precision = 5;
      s.space.clusters = 96;
      break;
  }
  return s;
}

InstalledDataset installVirtualDataset(pfs::Volume& volume, DatasetId id, double scale,
                                       pfs::StripeSettings stripe, std::uint64_t blockSize,
                                       std::size_t poolSize, std::size_t cacheBlocks,
                                       std::uint64_t seed) {
  MVIO_CHECK(scale > 0, "scale must be positive");
  const DatasetInfo& info = datasetInfo(id);
  auto bytes = static_cast<std::uint64_t>(static_cast<double>(info.paperBytes) * scale);
  bytes = std::max(bytes, blockSize);

  RecordGenerator gen(datasetSpec(id, seed));
  auto pool = std::make_shared<const RecordPool>(gen, poolSize);
  auto store = makeVirtualWktFile(pool, bytes, blockSize, seed, cacheBlocks);

  InstalledDataset out;
  out.path = std::string(info.name) + ".wkt";
  out.bytes = store->size();
  out.id = id;
  volume.createOrReplace(out.path, std::move(store), stripe);
  return out;
}

InstalledDataset installExactDataset(pfs::Volume& volume, DatasetId id, std::uint64_t count,
                                     pfs::StripeSettings stripe, std::uint64_t seed) {
  MVIO_CHECK(count >= 1, "need at least one record");
  const DatasetInfo& info = datasetInfo(id);
  RecordGenerator gen(datasetSpec(id, seed));
  auto store = std::make_shared<pfs::MemoryBackingStore>(generateWktText(gen, count));

  InstalledDataset out;
  out.path = std::string(info.name) + ".wkt";
  out.bytes = store->size();
  out.id = id;
  volume.createOrReplace(out.path, std::move(store), stripe);
  return out;
}

}  // namespace mvio::osm
