#include "osm/synth.hpp"

#include <algorithm>
#include <cmath>

#include "core/format.hpp"
#include "geom/wkt.hpp"
#include "util/error.hpp"

namespace mvio::osm {

RecordGenerator::RecordGenerator(SynthSpec spec) : spec_(std::move(spec)) {
  MVIO_CHECK(spec_.polygonWeight + spec_.lineWeight + spec_.pointWeight > 0, "empty record mix");
  MVIO_CHECK(spec_.minVertices >= 3, "polygons need >= 3 distinct vertices");
  MVIO_CHECK(spec_.maxVertices >= spec_.minVertices, "bad vertex range");
  MVIO_CHECK(!spec_.space.world.isNull(), "world bounds required");

  // Cluster centers are a fixed function of the seed.
  util::Rng rng(spec_.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  clusterCenters_.reserve(static_cast<std::size_t>(std::max(spec_.space.clusters, 1)));
  for (int i = 0; i < std::max(spec_.space.clusters, 1); ++i) {
    clusterCenters_.push_back({rng.uniform(spec_.space.world.minX(), spec_.space.world.maxX()),
                               rng.uniform(spec_.space.world.minY(), spec_.space.world.maxY())});
  }
}

util::Rng RecordGenerator::rngFor(std::uint64_t i) const {
  util::SplitMix64 mixer(spec_.seed ^ (i * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL));
  return util::Rng(mixer.next());
}

RecordKind RecordGenerator::kindOf(std::uint64_t i) const {
  util::Rng rng = rngFor(i);
  const double total = spec_.polygonWeight + spec_.lineWeight + spec_.pointWeight;
  const double u = rng.uniform() * total;
  if (u < spec_.polygonWeight) return RecordKind::kPolygon;
  if (u < spec_.polygonWeight + spec_.lineWeight) return RecordKind::kLine;
  return RecordKind::kPoint;
}

geom::Coord RecordGenerator::samplePosition(util::Rng& rng) const {
  const auto& w = spec_.space.world;
  if (rng.uniform() < spec_.space.uniformFraction || clusterCenters_.empty()) {
    return {rng.uniform(w.minX(), w.maxX()), rng.uniform(w.minY(), w.maxY())};
  }
  const auto& c = clusterCenters_[static_cast<std::size_t>(rng.below(clusterCenters_.size()))];
  const double x = std::clamp(rng.normal(c.x, spec_.space.clusterStddev), w.minX(), w.maxX());
  const double y = std::clamp(rng.normal(c.y, spec_.space.clusterStddev), w.minY(), w.maxY());
  return {x, y};
}

namespace {

/// Star-shaped ring around `center`: n distinct vertices at sorted angles
/// with jittered radii — always a valid simple polygon ring.
geom::Ring starRing(util::Rng& rng, const geom::Coord& center, double radius, std::uint32_t n) {
  geom::Ring ring;
  ring.coords.reserve(n + 1);
  const double twoPi = 6.283185307179586;
  for (std::uint32_t k = 0; k < n; ++k) {
    const double theta = twoPi * (static_cast<double>(k) + 0.8 * rng.uniform()) / static_cast<double>(n);
    const double r = radius * (0.55 + 0.45 * rng.uniform());
    ring.coords.push_back({center.x + r * std::cos(theta), center.y + r * std::sin(theta)});
  }
  ring.coords.push_back(ring.coords.front());
  return ring;
}

}  // namespace

geom::Geometry RecordGenerator::makeGeometry(util::Rng& rng, RecordKind kind) const {
  switch (kind) {
    case RecordKind::kPoint:
      return geom::Geometry::point(samplePosition(rng));
    case RecordKind::kLine: {
      const auto n = static_cast<std::uint32_t>(
          rng.powerLaw(spec_.minSegments, spec_.maxSegments, spec_.segmentAlpha));
      std::vector<geom::Coord> coords;
      coords.reserve(n + 1);
      geom::Coord cur = samplePosition(rng);
      coords.push_back(cur);
      double heading = rng.uniform(0.0, 6.283185307179586);
      for (std::uint32_t k = 0; k < n; ++k) {
        heading += rng.normal(0.0, 0.5);  // roads bend gently
        cur = {cur.x + spec_.stepLength * std::cos(heading),
               cur.y + spec_.stepLength * std::sin(heading)};
        coords.push_back(cur);
      }
      return geom::Geometry::lineString(std::move(coords));
    }
    case RecordKind::kPolygon: {
      const auto n = static_cast<std::uint32_t>(
          rng.powerLaw(spec_.minVertices, spec_.maxVertices, spec_.vertexAlpha));
      const geom::Coord center = samplePosition(rng);
      // Log-uniform radius: small features dominate, a few are huge.
      const double radius =
          spec_.minRadius * std::pow(spec_.maxRadius / spec_.minRadius, rng.uniform());
      std::vector<geom::Ring> rings;
      rings.push_back(starRing(rng, center, radius, std::max<std::uint32_t>(n, 3)));
      if (rng.uniform() < spec_.holeProbability && n >= 8) {
        rings.push_back(starRing(rng, center, radius * 0.3, std::max<std::uint32_t>(n / 3, 3)));
      }
      return geom::Geometry::polygon(std::move(rings));
    }
  }
  MVIO_UNREACHABLE("unknown record kind");
}

geom::Geometry RecordGenerator::geometry(std::uint64_t i) const {
  util::Rng rng = rngFor(i);
  const double total = spec_.polygonWeight + spec_.lineWeight + spec_.pointWeight;
  const double u = rng.uniform() * total;
  RecordKind kind;
  if (u < spec_.polygonWeight) {
    kind = RecordKind::kPolygon;
  } else if (u < spec_.polygonWeight + spec_.lineWeight) {
    kind = RecordKind::kLine;
  } else {
    kind = RecordKind::kPoint;
  }
  return makeGeometry(rng, kind);
}

std::string RecordGenerator::record(std::uint64_t i) const {
  const geom::Geometry g = geometry(i);
  std::string out = geom::writeWkt(g, spec_.precision);
  if (spec_.attributes) {
    out += "\tid=";
    out += std::to_string(i);
    out += ";source=synthetic-osm";
  }
  return out;
}

std::string generateWktText(const RecordGenerator& gen, std::uint64_t count) {
  std::string out;
  for (std::uint64_t i = 0; i < count; ++i) {
    out += gen.record(i);
    out += '\n';
  }
  return out;
}

std::string generateWkbText(const RecordGenerator& gen, std::uint64_t count) {
  std::string out;
  for (std::uint64_t i = 0; i < count; ++i) {
    // Round every record through its WKT text: printing quantizes
    // coordinates to spec().precision digits, and the binary corpus must
    // carry exactly the doubles the WKT ingest path parses — that is what
    // makes the two encodings bit-identical end to end.
    const std::string rec = gen.record(i);
    std::string_view wktPart(rec);
    std::string_view attrs;
    const std::size_t tab = rec.find('\t');
    if (tab != std::string::npos) {
      wktPart = std::string_view(rec).substr(0, tab);
      attrs = std::string_view(rec).substr(tab + 1);
    }
    const geom::Geometry g = geom::readWkt(wktPart);
    core::appendWkbRecord(g, attrs, out);
  }
  return out;
}

}  // namespace mvio::osm
