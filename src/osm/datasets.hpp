#pragma once
// The Table 3 dataset catalog, reproduced synthetically.
//
//   #  Dataset       Shape    Paper size  Paper count  Seq. I/O+parse
//   1  Cemetery      Polygon  56 MB       193 K        2.1 s
//   2  Lakes         Polygon  9 GB        8 M          328 s
//   3  Roads         Polygon  24 GB       72 M         786 s
//   4  All Objects   Polygon  92 GB       263 M        4728 s
//   5  Road Network  Line     137 GB      717 M        2873 s
//   6  All Nodes     Point    96 GB       2.7 B        3782 s
//
// Each entry carries a SynthSpec tuned so the synthetic records match the
// paper dataset's average record size and shape type. Installers place
// either a virtual (O(1)-memory, scaled) file or an exact in-memory file
// onto a pfs::Volume. EXPERIMENTS.md records the scale used per
// experiment.

#include <cstdint>
#include <string>

#include "osm/synth.hpp"
#include "osm/virtual_file.hpp"
#include "pfs/volume.hpp"

namespace mvio::osm {

enum class DatasetId { kCemetery, kLakes, kRoads, kAllObjects, kRoadNetwork, kAllNodes };

struct DatasetInfo {
  const char* name;
  const char* shape;
  std::uint64_t paperBytes;
  std::uint64_t paperCount;
  double paperSeqIoSeconds;  ///< Table 3 "I/O (sec)" column
};

const DatasetInfo& datasetInfo(DatasetId id);

/// The tuned generator spec for a catalog dataset.
SynthSpec datasetSpec(DatasetId id, std::uint64_t seed = 42);

struct InstalledDataset {
  std::string path;          ///< name on the volume
  std::uint64_t bytes = 0;   ///< actual file size installed
  DatasetId id{};
};

/// Install a scaled virtual file: size = paperBytes * scale, O(1) memory.
InstalledDataset installVirtualDataset(pfs::Volume& volume, DatasetId id, double scale,
                                       pfs::StripeSettings stripe = {},
                                       std::uint64_t blockSize = 4ull << 20,
                                       std::size_t poolSize = 384, std::size_t cacheBlocks = 64,
                                       std::uint64_t seed = 42);

/// Install an exact in-memory file holding records [0, count).
InstalledDataset installExactDataset(pfs::Volume& volume, DatasetId id, std::uint64_t count,
                                     pfs::StripeSettings stripe = {}, std::uint64_t seed = 42);

}  // namespace mvio::osm
