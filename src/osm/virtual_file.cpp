#include "osm/virtual_file.hpp"

#include <cstring>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mvio::osm {

RecordPool::RecordPool(const RecordGenerator& gen, std::size_t poolSize) {
  MVIO_CHECK(poolSize >= 1, "pool needs at least one record");
  records_.reserve(poolSize);
  for (std::size_t i = 0; i < poolSize; ++i) {
    records_.push_back(gen.record(i));
    maxRecordBytes_ = std::max(maxRecordBytes_, records_.back().size());
  }
}

std::shared_ptr<pfs::GeneratedBackingStore> makeVirtualWktFile(std::shared_ptr<const RecordPool> pool,
                                                               std::uint64_t totalBytes,
                                                               std::uint64_t blockSize,
                                                               std::uint64_t seed,
                                                               std::size_t cacheBlocks) {
  MVIO_CHECK(pool != nullptr, "record pool required");
  MVIO_CHECK(blockSize >= (pool->maxRecordBytes() + 1) * 2,
             "block size must be at least twice the largest pooled record");
  MVIO_CHECK(totalBytes >= blockSize, "file must hold at least one block");

  auto generator = [pool, seed](std::uint64_t blockIndex, char* out, std::size_t n) {
    util::SplitMix64 mixer(seed ^ (blockIndex * 0xA24BAED4963EE407ULL + 0x9FB21C651E98DF25ULL));
    util::Rng rng(mixer.next());
    std::size_t pos = 0;
    // Keep appending whole records while one more (plus its newline) is
    // guaranteed to fit in the worst case.
    while (pos + pool->maxRecordBytes() + 1 <= n) {
      const std::string& rec = pool->at(static_cast<std::size_t>(rng.below(pool->size())));
      std::memcpy(out + pos, rec.data(), rec.size());
      pos += rec.size();
      out[pos++] = '\n';
    }
    // Pad the tail with spaces; parsers skip whitespace-only records.
    if (pos < n) {
      std::memset(out + pos, ' ', n - pos);
      out[n - 1] = '\n';
    }
  };

  return std::make_shared<pfs::GeneratedBackingStore>(totalBytes, blockSize, std::move(generator),
                                                      cacheBlocks);
}

std::shared_ptr<pfs::GeneratedBackingStore> makeVirtualBinaryFile(
    std::uint64_t count, std::size_t recordBytes, std::function<void(std::uint64_t, char*)> fill,
    std::uint64_t blockSize, std::size_t cacheBlocks) {
  MVIO_CHECK(recordBytes >= 1, "records must have at least one byte");
  MVIO_CHECK(blockSize % recordBytes == 0,
             "binary block size must be a whole number of records so records never straddle blocks");
  MVIO_CHECK(fill != nullptr, "record fill function required");

  const std::uint64_t totalBytes = count * recordBytes;
  const std::uint64_t recordsPerBlock = blockSize / recordBytes;
  auto generator = [recordBytes, recordsPerBlock, fill = std::move(fill)](std::uint64_t blockIndex,
                                                                          char* out, std::size_t n) {
    const std::uint64_t firstRecord = blockIndex * recordsPerBlock;
    MVIO_CHECK(n % recordBytes == 0, "partial record in generated block");
    const std::uint64_t records = n / recordBytes;
    for (std::uint64_t r = 0; r < records; ++r) {
      fill(firstRecord + r, out + r * recordBytes);
    }
  };
  return std::make_shared<pfs::GeneratedBackingStore>(totalBytes, blockSize, std::move(generator),
                                                      cacheBlocks);
}

}  // namespace mvio::osm
