#pragma once
// Synthetic OSM-like vector data (DESIGN.md §2: dataset substitution).
//
// The paper's experiments run on OpenStreetMap extracts (Table 3). We
// reproduce their *statistics* with seeded generators:
//  * spatial skew: a mixture of Gaussian clusters over a world bounding
//    box plus a uniform background (real map data is heavily clustered —
//    the paper's motivation for declustering / load balancing);
//  * vertex-count skew: power-law distributed ring sizes, so a few
//    geometries are orders of magnitude larger than the median (the
//    paper's ">100K coordinates", "11 MB largest polygon");
//  * record shapes: WKT POLYGON (with occasional holes), LINESTRING
//    random-walk "roads", POINT nodes, or a mix ("All Objects"), each
//    optionally followed by tab-separated OSM-ish attribute tags.
//
// Everything is a pure function of (spec.seed, record index): the same
// index always yields byte-identical records, which is what makes the
// virtual multi-GB files (virtual_file.hpp) and all tests reproducible.

#include <cstdint>
#include <string>
#include <vector>

#include "geom/envelope.hpp"
#include "geom/geometry.hpp"
#include "util/rng.hpp"

namespace mvio::osm {

/// Clustered spatial distribution over a world rectangle.
struct SpatialDistribution {
  geom::Envelope world{-180.0, -85.0, 180.0, 85.0};
  int clusters = 48;
  double clusterStddev = 2.5;     ///< degrees
  double uniformFraction = 0.15;  ///< background fraction drawn uniformly
};

enum class RecordKind : std::uint8_t { kPolygon, kLine, kPoint };

struct SynthSpec {
  /// Mix weights for record kinds (normalized internally).
  double polygonWeight = 1.0;
  double lineWeight = 0.0;
  double pointWeight = 0.0;

  SpatialDistribution space;

  // Polygon shape parameters.
  std::uint32_t minVertices = 4;
  std::uint32_t maxVertices = 256;
  double vertexAlpha = 2.2;      ///< power-law exponent for ring sizes
  double minRadius = 0.001;      ///< degrees
  double maxRadius = 0.3;
  double holeProbability = 0.08;

  // Polyline parameters (random-walk roads).
  std::uint32_t minSegments = 2;
  std::uint32_t maxSegments = 48;
  double segmentAlpha = 1.8;
  double stepLength = 0.01;

  bool attributes = true;  ///< append "\tid=...;tag=..." to each record
  int precision = 6;       ///< WKT coordinate digits
  std::uint64_t seed = 42;
};

/// Deterministic record factory for one SynthSpec.
class RecordGenerator {
 public:
  explicit RecordGenerator(SynthSpec spec);

  /// The WKT record for index `i` (no trailing newline).
  [[nodiscard]] std::string record(std::uint64_t i) const;

  /// The parsed geometry of record `i` (attributes omitted). Provided for
  /// tests; equals readWkt(record(i)) up to coordinate printing precision.
  [[nodiscard]] geom::Geometry geometry(std::uint64_t i) const;

  /// Kind of record `i`.
  [[nodiscard]] RecordKind kindOf(std::uint64_t i) const;

  [[nodiscard]] const SynthSpec& spec() const { return spec_; }

 private:
  SynthSpec spec_;
  std::vector<geom::Coord> clusterCenters_;

  [[nodiscard]] util::Rng rngFor(std::uint64_t i) const;
  [[nodiscard]] geom::Coord samplePosition(util::Rng& rng) const;
  [[nodiscard]] geom::Geometry makeGeometry(util::Rng& rng, RecordKind kind) const;
};

/// Concatenate records [0, count) separated (and terminated) by newlines.
std::string generateWktText(const RecordGenerator& gen, std::uint64_t count);

/// The same records [0, count) as a length-prefixed WKB record stream
/// (core/format.hpp framing). Coordinates are the WKT text re-parsed, so
/// the binary corpus decodes to arenas bit-identical to the WKT ingest of
/// generateWktText — one seed, two encodings, equal results.
std::string generateWkbText(const RecordGenerator& gen, std::uint64_t count);

}  // namespace mvio::osm
