#pragma once
// Virtual dataset files: multi-GB-shaped WKT/binary files in O(1) memory.
//
// A RecordPool pre-renders a few hundred distinct records from a
// RecordGenerator. A pool-backed block generator then fills each
// fixed-size block of a pfs::GeneratedBackingStore with records chosen by
// a per-block seeded RNG, newline-terminated, padding the block tail with
// spaces (parsers skip whitespace-only records). Bytes at any offset are
// a pure function of (seed, block index), so a "92 GB" file costs only
// the pool plus an LRU of materialized blocks.
//
// Records never straddle generator blocks, but file *partitions* (which
// ranks cut at arbitrary byte offsets) still split records — the exact
// problem Algorithm 1 exists to solve — because partition boundaries fall
// mid-block.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osm/synth.hpp"
#include "pfs/backing.hpp"

namespace mvio::osm {

/// Pre-rendered record strings (indices 0..size-1 of a generator).
class RecordPool {
 public:
  RecordPool(const RecordGenerator& gen, std::size_t poolSize);

  [[nodiscard]] const std::string& at(std::size_t i) const { return records_[i]; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::size_t maxRecordBytes() const { return maxRecordBytes_; }

 private:
  std::vector<std::string> records_;
  std::size_t maxRecordBytes_ = 0;
};

/// WKT virtual file of exactly `totalBytes` bytes built from `pool`.
/// `blockSize` must exceed the pool's largest record by a healthy margin
/// (checked); `cacheBlocks` bounds resident memory.
std::shared_ptr<pfs::GeneratedBackingStore> makeVirtualWktFile(std::shared_ptr<const RecordPool> pool,
                                                               std::uint64_t totalBytes,
                                                               std::uint64_t blockSize,
                                                               std::uint64_t seed,
                                                               std::size_t cacheBlocks = 64);

/// Binary fixed-record virtual file: `count` records of `recordBytes`
/// each, filled by `fill(recordIndex, out)` — used for the MBR and point
/// binary files of Figures 12/15.
std::shared_ptr<pfs::GeneratedBackingStore> makeVirtualBinaryFile(
    std::uint64_t count, std::size_t recordBytes,
    std::function<void(std::uint64_t, char*)> fill, std::uint64_t blockSize = 4ull << 20,
    std::size_t cacheBlocks = 64);

}  // namespace mvio::osm
