#include "mpi/datatype.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/error.hpp"

namespace mvio::mpi {

namespace {

/// Sort blocks by offset and merge adjacent ones (type commit).
std::vector<Datatype::Block> normalize(std::vector<Datatype::Block> blocks) {
  std::sort(blocks.begin(), blocks.end(),
            [](const Datatype::Block& a, const Datatype::Block& b) { return a.offset < b.offset; });
  std::vector<Datatype::Block> out;
  for (const auto& b : blocks) {
    if (b.length == 0) continue;
    if (!out.empty() && out.back().offset + static_cast<std::int64_t>(out.back().length) == b.offset) {
      out.back().length += b.length;
    } else {
      out.push_back(b);
    }
  }
  return out;
}

}  // namespace

struct Datatype::Impl {
  std::vector<Block> blocks;  // offset-sorted, coalesced
  std::int64_t lb = 0;
  std::uint64_t extent = 0;
  std::uint64_t size = 0;
  std::string name;
  ScalarKind kind = ScalarKind::kNone;

  static std::shared_ptr<const Impl> make(std::vector<Block> blocks, std::int64_t lb, std::uint64_t extent,
                                          std::string name, ScalarKind kind) {
    auto impl = std::make_shared<Impl>();
    impl->blocks = normalize(std::move(blocks));
    impl->lb = lb;
    impl->extent = extent;
    impl->size = 0;
    for (const auto& b : impl->blocks) impl->size += b.length;
    impl->name = std::move(name);
    impl->kind = kind;
    return impl;
  }

  static std::shared_ptr<const Impl> builtin(std::uint64_t bytes, const char* name, ScalarKind kind) {
    return make({{0, bytes}}, 0, bytes, name, kind);
  }
};

Datatype::Datatype(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}

Datatype::Datatype() : impl_(Impl::builtin(1, "BYTE", ScalarKind::kByte)) {}

Datatype Datatype::byte() { return Datatype(Impl::builtin(1, "BYTE", ScalarKind::kByte)); }
Datatype Datatype::char_() { return Datatype(Impl::builtin(1, "CHAR", ScalarKind::kChar)); }
Datatype Datatype::int32() { return Datatype(Impl::builtin(4, "INT32", ScalarKind::kInt32)); }
Datatype Datatype::int64() { return Datatype(Impl::builtin(8, "INT64", ScalarKind::kInt64)); }
Datatype Datatype::uint64() { return Datatype(Impl::builtin(8, "UINT64", ScalarKind::kUint64)); }
Datatype Datatype::float32() { return Datatype(Impl::builtin(4, "FLOAT32", ScalarKind::kFloat32)); }
Datatype Datatype::float64() { return Datatype(Impl::builtin(8, "FLOAT64", ScalarKind::kFloat64)); }

Datatype Datatype::contiguous(int count, const Datatype& base) {
  MVIO_CHECK(count >= 0, "contiguous count must be >= 0");
  std::vector<Block> blocks;
  const auto& bb = base.blocks();
  const auto ext = static_cast<std::int64_t>(base.extent());
  blocks.reserve(bb.size() * static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    for (const auto& b : bb) blocks.push_back({b.offset + i * ext, b.length});
  }
  return Datatype(Impl::make(std::move(blocks), base.lowerBound(),
                             base.extent() * static_cast<std::uint64_t>(count),
                             "CONTIG(" + std::to_string(count) + "," + base.describe() + ")",
                             base.scalarKind()));
}

Datatype Datatype::vector(int count, int blocklength, int stride, const Datatype& base) {
  MVIO_CHECK(count >= 0 && blocklength >= 0, "vector count/blocklength must be >= 0");
  std::vector<Block> blocks;
  const auto& bb = base.blocks();
  const auto ext = static_cast<std::int64_t>(base.extent());
  for (int i = 0; i < count; ++i) {
    const std::int64_t rowStart = static_cast<std::int64_t>(i) * stride * ext;
    for (int j = 0; j < blocklength; ++j) {
      for (const auto& b : bb) blocks.push_back({rowStart + j * ext + b.offset, b.length});
    }
  }
  // MPI extent of a vector spans from the first to one past the last element.
  const std::int64_t span =
      count > 0 ? (static_cast<std::int64_t>(count - 1) * stride + blocklength) * ext : 0;
  return Datatype(Impl::make(std::move(blocks), 0,
                             static_cast<std::uint64_t>(std::max<std::int64_t>(span, 0)),
                             "VECTOR(" + std::to_string(count) + "," + std::to_string(blocklength) + "," +
                                 std::to_string(stride) + ")",
                             base.scalarKind()));
}

Datatype Datatype::indexed(std::span<const int> blocklengths, std::span<const int> displacements,
                           const Datatype& base) {
  MVIO_CHECK(blocklengths.size() == displacements.size(), "indexed arrays must have equal length");
  std::vector<Block> blocks;
  const auto& bb = base.blocks();
  const auto ext = static_cast<std::int64_t>(base.extent());
  std::int64_t maxEnd = 0;
  for (std::size_t i = 0; i < blocklengths.size(); ++i) {
    MVIO_CHECK(blocklengths[i] >= 0, "indexed blocklength must be >= 0");
    for (int j = 0; j < blocklengths[i]; ++j) {
      const std::int64_t at = (static_cast<std::int64_t>(displacements[i]) + j) * ext;
      for (const auto& b : bb) blocks.push_back({at + b.offset, b.length});
      maxEnd = std::max(maxEnd, at + ext);
    }
  }
  return Datatype(Impl::make(std::move(blocks), 0, static_cast<std::uint64_t>(maxEnd),
                             "INDEXED(" + std::to_string(blocklengths.size()) + " blocks)",
                             base.scalarKind()));
}

Datatype Datatype::structType(std::span<const int> blocklengths,
                              std::span<const std::int64_t> byteDisplacements,
                              std::span<const Datatype> types) {
  MVIO_CHECK(blocklengths.size() == byteDisplacements.size() && blocklengths.size() == types.size(),
             "struct arrays must have equal length");
  std::vector<Block> blocks;
  std::int64_t maxEnd = 0;
  for (std::size_t i = 0; i < blocklengths.size(); ++i) {
    MVIO_CHECK(blocklengths[i] >= 0, "struct blocklength must be >= 0");
    const auto ext = static_cast<std::int64_t>(types[i].extent());
    for (int j = 0; j < blocklengths[i]; ++j) {
      const std::int64_t at = byteDisplacements[i] + j * ext;
      for (const auto& b : types[i].blocks()) blocks.push_back({at + b.offset, b.length});
      maxEnd = std::max(maxEnd, at + ext);
    }
  }
  ScalarKind kind = types.empty() ? ScalarKind::kNone : types[0].scalarKind();
  for (const auto& t : types) {
    if (t.scalarKind() != kind) kind = ScalarKind::kNone;
  }
  return Datatype(Impl::make(std::move(blocks), 0, static_cast<std::uint64_t>(maxEnd),
                             "STRUCT(" + std::to_string(blocklengths.size()) + " fields)", kind));
}

Datatype Datatype::resized(std::int64_t lowerBound, std::uint64_t extent) const {
  return Datatype(Impl::make(impl_->blocks, lowerBound, extent, impl_->name + "+RESIZED", impl_->kind));
}

std::uint64_t Datatype::size() const { return impl_->size; }
std::uint64_t Datatype::extent() const { return impl_->extent; }
std::int64_t Datatype::lowerBound() const { return impl_->lb; }
const std::vector<Datatype::Block>& Datatype::blocks() const { return impl_->blocks; }

bool Datatype::isContiguous() const {
  return impl_->blocks.size() == 1 && impl_->blocks[0].offset == 0 &&
         impl_->blocks[0].length == impl_->extent;
}

std::string Datatype::describe() const { return impl_->name; }

Datatype::ScalarKind Datatype::scalarKind() const { return impl_->kind; }

void Datatype::pack(const void* src, int count, std::string& out) const {
  MVIO_CHECK(count >= 0, "pack count must be >= 0");
  const char* base = static_cast<const char*>(src);
  const auto ext = static_cast<std::int64_t>(impl_->extent);
  if (isContiguous()) {
    out.append(base, static_cast<std::size_t>(ext) * static_cast<std::size_t>(count));
    return;
  }
  out.reserve(out.size() + impl_->size * static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const char* elem = base + i * ext;
    for (const auto& b : impl_->blocks) out.append(elem + b.offset, b.length);
  }
}

void Datatype::unpack(const char* src, std::size_t srcBytes, void* dst, int count) const {
  MVIO_CHECK(count >= 0, "unpack count must be >= 0");
  MVIO_CHECK(srcBytes == impl_->size * static_cast<std::uint64_t>(count),
             "unpack: payload size does not match count*size()");
  char* base = static_cast<char*>(dst);
  const auto ext = static_cast<std::int64_t>(impl_->extent);
  if (isContiguous()) {
    std::memcpy(base, src, srcBytes);
    return;
  }
  for (int i = 0; i < count; ++i) {
    char* elem = base + i * ext;
    for (const auto& b : impl_->blocks) {
      std::memcpy(elem + b.offset, src, b.length);
      src += b.length;
    }
  }
}

}  // namespace mvio::mpi
