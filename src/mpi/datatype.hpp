#pragma once
// MPI derived datatypes (typemap model), the abstraction the paper builds
// its spatial datatypes on (MPI_POINT = contiguous doubles, MPI_RECT = 4
// doubles, vertex-indexed polygon layouts via MPI_Type_indexed, custom
// file views, ...).
//
// A Datatype is an immutable value handle over a flattened typemap: a list
// of (byte offset, byte length) blocks relative to the start of one
// element, plus an extent that positions consecutive elements. Flattening
// happens at construction (type commit), and adjacent blocks are coalesced
// — this is what lets contiguous spans degrade to a single memcpy, and
// what the non-contiguous file views hand to the I/O layer.
//
// Constructors mirror the MPI calls used in the paper:
//   contiguous  <- MPI_Type_contiguous
//   vector      <- MPI_Type_vector
//   indexed     <- MPI_Type_indexed      (variable-length polygon layouts)
//   structType  <- MPI_Type_create_struct (MPI_RECT as a C struct)
//   resized     <- MPI_Type_create_resized

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mvio::mpi {

class Datatype {
 public:
  /// One contiguous piece of an element's typemap.
  struct Block {
    std::int64_t offset;  ///< byte offset from element start (may be negative after resize tricks)
    std::uint64_t length; ///< bytes
  };

  /// Underlying scalar of the typemap, when homogeneous. Built-in
  /// reduction ops dispatch on this; heterogeneous structs report kNone.
  enum class ScalarKind : std::uint8_t { kNone, kByte, kChar, kInt32, kInt64, kUint64, kFloat32, kFloat64 };

  Datatype();  ///< defaults to byte()

  // ---- Built-ins ---------------------------------------------------------
  static Datatype byte();
  static Datatype char_();
  static Datatype int32();
  static Datatype int64();
  static Datatype uint64();
  static Datatype float32();
  static Datatype float64();

  // ---- Constructors ------------------------------------------------------
  static Datatype contiguous(int count, const Datatype& base);
  static Datatype vector(int count, int blocklength, int stride, const Datatype& base);
  static Datatype indexed(std::span<const int> blocklengths, std::span<const int> displacements,
                          const Datatype& base);
  /// Heterogeneous struct: per-field block length, byte displacement, type.
  static Datatype structType(std::span<const int> blocklengths,
                             std::span<const std::int64_t> byteDisplacements,
                             std::span<const Datatype> types);
  /// Same typemap, new extent (element stride).
  [[nodiscard]] Datatype resized(std::int64_t lowerBound, std::uint64_t extent) const;

  // ---- Introspection -----------------------------------------------------
  /// Payload bytes per element (sum of block lengths).
  [[nodiscard]] std::uint64_t size() const;
  /// Stride between consecutive elements.
  [[nodiscard]] std::uint64_t extent() const;
  [[nodiscard]] std::int64_t lowerBound() const;
  /// Flattened, offset-sorted, coalesced blocks of one element.
  [[nodiscard]] const std::vector<Block>& blocks() const;
  /// True when one element is a single block starting at offset 0 whose
  /// length equals the extent (enables raw-memcpy fast paths).
  [[nodiscard]] bool isContiguous() const;
  /// Human-readable description for diagnostics.
  [[nodiscard]] std::string describe() const;
  /// Homogeneous scalar kind (kNone for mixed structs).
  [[nodiscard]] ScalarKind scalarKind() const;

  // ---- Pack / unpack -----------------------------------------------------
  /// Append the payload of `count` elements at `src` to `out`.
  void pack(const void* src, int count, std::string& out) const;
  /// Scatter `count` elements of payload from `src` (contiguous) into the
  /// typemap layout at `dst`. `srcBytes` must equal count*size().
  void unpack(const char* src, std::size_t srcBytes, void* dst, int count) const;

  friend bool operator==(const Datatype& a, const Datatype& b) { return a.impl_ == b.impl_; }

 private:
  struct Impl;
  explicit Datatype(std::shared_ptr<const Impl> impl);
  std::shared_ptr<const Impl> impl_;
};

}  // namespace mvio::mpi
