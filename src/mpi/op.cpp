#include "mpi/op.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "util/error.hpp"

namespace mvio::mpi {

Op Op::create(Function fn, bool commutative, std::string name) {
  MVIO_CHECK(fn != nullptr, "op function required");
  Op op;
  auto impl = std::make_shared<Impl>();
  impl->fn = std::move(fn);
  impl->commutative = commutative;
  impl->name = std::move(name);
  op.impl_ = std::move(impl);
  return op;
}

void Op::apply(const void* in, void* inout, int count, const Datatype& type) const {
  MVIO_CHECK(impl_ != nullptr, "op not initialised");
  impl_->fn(in, inout, count, type);
}

bool Op::commutative() const {
  MVIO_CHECK(impl_ != nullptr, "op not initialised");
  return impl_->commutative;
}

const std::string& Op::name() const {
  MVIO_CHECK(impl_ != nullptr, "op not initialised");
  return impl_->name;
}

namespace {

/// Apply `Combine` element-wise for whichever basic type matches the
/// datatype's element size; the datatype must be a built-in or a
/// contiguous assembly of one built-in kind.
template <typename Combine>
void applyBasic(const void* in, void* inout, int count, const Datatype& type, Combine&& combine,
                const char* opName) {
  // Reductions are defined on the *payload*: interpret count*size() bytes
  // as a flat array of the underlying scalar. This matches how the
  // built-ins get used in this codebase (flat INT/DOUBLE buffers).
  MVIO_CHECK(type.isContiguous(), std::string(opName) + " built-in op requires a contiguous datatype");
  const std::uint64_t totalBytes = type.size() * static_cast<std::uint64_t>(count);

  switch (type.scalarKind()) {
    case Datatype::ScalarKind::kFloat32:
      combine(static_cast<const float*>(in), static_cast<float*>(inout), totalBytes / 4);
      return;
    case Datatype::ScalarKind::kFloat64:
      combine(static_cast<const double*>(in), static_cast<double*>(inout), totalBytes / 8);
      return;
    case Datatype::ScalarKind::kUint64:
      combine(static_cast<const std::uint64_t*>(in), static_cast<std::uint64_t*>(inout), totalBytes / 8);
      return;
    case Datatype::ScalarKind::kInt32:
      combine(static_cast<const std::int32_t*>(in), static_cast<std::int32_t*>(inout), totalBytes / 4);
      return;
    case Datatype::ScalarKind::kInt64:
      combine(static_cast<const std::int64_t*>(in), static_cast<std::int64_t*>(inout), totalBytes / 8);
      return;
    case Datatype::ScalarKind::kByte:
    case Datatype::ScalarKind::kChar:
    case Datatype::ScalarKind::kNone:
      break;
  }
  MVIO_CHECK(false, std::string(opName) + ": built-in reductions need a numeric scalar datatype");
}

}  // namespace

Op Op::sum() {
  return create(
      [](const void* in, void* inout, int count, const Datatype& type) {
        applyBasic(in, inout, count, type,
                   [](const auto* a, auto* b, std::uint64_t n) {
                     for (std::uint64_t i = 0; i < n; ++i) b[i] = static_cast<std::decay_t<decltype(b[0])>>(b[i] + a[i]);
                   },
                   "SUM");
      },
      true, "SUM");
}

Op Op::min() {
  return create(
      [](const void* in, void* inout, int count, const Datatype& type) {
        applyBasic(in, inout, count, type,
                   [](const auto* a, auto* b, std::uint64_t n) {
                     for (std::uint64_t i = 0; i < n; ++i) b[i] = std::min(b[i], a[i]);
                   },
                   "MIN");
      },
      true, "MIN");
}

Op Op::max() {
  return create(
      [](const void* in, void* inout, int count, const Datatype& type) {
        applyBasic(in, inout, count, type,
                   [](const auto* a, auto* b, std::uint64_t n) {
                     for (std::uint64_t i = 0; i < n; ++i) b[i] = std::max(b[i], a[i]);
                   },
                   "MAX");
      },
      true, "MAX");
}

}  // namespace mvio::mpi
