#include "mpi/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace mvio::mpi {

namespace detail {

/// A message in flight: real payload bytes plus the virtual time at which
/// the transfer completes on the receiver side.
struct Envelope {
  int source = -1;
  int tag = -1;
  std::string payload;
  double readyAt = 0.0;
};

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Envelope> q;
};

/// Arguments a rank registers when it arrives at a collective.
struct CollArg {
  const void* send = nullptr;
  void* recv = nullptr;
  const int* scounts = nullptr;
  const int* sdispls = nullptr;
  const int* rcounts = nullptr;
  const int* rdispls = nullptr;
  int count = 0;
  int a = 0;  // generic scalar slot (root / color)
  int b = 0;  // generic scalar slot (key)
  double now = 0.0;
};

struct CommData;

struct CollectiveSlot {
  std::mutex m;
  std::condition_variable cv;
  std::uint64_t generation = 0;
  int arrived = 0;
  std::vector<CollArg> args;
  std::vector<double> completion;
  // split() results, per local rank:
  std::vector<std::shared_ptr<CommData>> splitComm;
  std::vector<int> splitLocalRank;
};

struct RankContext {
  int worldRank = 0;
  sim::Clock clock;
};

struct RuntimeState;

struct CommData {
  RuntimeState* rt = nullptr;
  std::vector<int> globalRanks;  // local rank -> world rank
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  CollectiveSlot coll;
  bool spansNodes = false;

  [[nodiscard]] int size() const { return static_cast<int>(globalRanks.size()); }
};

struct RuntimeState {
  sim::MachineModel machine;
  int nprocs = 0;
  std::vector<RankContext> ranks;
  CommData world;
  std::mutex subMutex;
  std::vector<std::shared_ptr<CommData>> subComms;
  std::atomic<bool> aborted{false};

  void initComm(CommData& c, std::vector<int> globalRanks) {
    c.rt = this;
    c.globalRanks = std::move(globalRanks);
    const auto p = static_cast<std::size_t>(c.size());
    c.mailboxes.clear();
    c.mailboxes.reserve(p);
    for (std::size_t i = 0; i < p; ++i) c.mailboxes.push_back(std::make_unique<Mailbox>());
    c.coll.args.resize(p);
    c.coll.completion.resize(p);
    c.coll.splitComm.resize(p);
    c.coll.splitLocalRank.resize(p);
    c.spansNodes = false;
    for (int g : c.globalRanks) {
      if (machine.nodeOf(g) != machine.nodeOf(c.globalRanks.front())) {
        c.spansNodes = true;
        break;
      }
    }
  }

  void abortAll() {
    aborted.store(true);
    auto wake = [](CommData& c) {
      for (auto& mb : c.mailboxes) {
        std::lock_guard<std::mutex> lock(mb->m);
        mb->cv.notify_all();
      }
      {
        std::lock_guard<std::mutex> lock(c.coll.m);
        c.coll.cv.notify_all();
      }
    };
    wake(world);
    std::lock_guard<std::mutex> lock(subMutex);
    for (auto& sub : subComms) wake(*sub);
  }
};

namespace {

[[noreturn]] void throwAborted() {
  throw util::Error("parallel run aborted because another rank failed", __FILE__, __LINE__);
}

/// Binomial-tree depth for P participants.
int treeDepth(int p) {
  int d = 0;
  while ((1 << d) < p) ++d;
  return d;
}

}  // namespace

}  // namespace detail

using detail::CollArg;
using detail::CommData;
using detail::Envelope;
using detail::Mailbox;

// ---- Comm basics -----------------------------------------------------------

int Comm::size() const { return comm_->size(); }
int Comm::worldRank() const { return comm_->globalRanks[static_cast<std::size_t>(localRank_)]; }
int Comm::nodeId() const { return comm_->rt->machine.nodeOf(worldRank()); }

int Comm::nodeOfRank(int localRank) const {
  MVIO_CHECK(localRank >= 0 && localRank < size(), "nodeOfRank: bad rank");
  return comm_->rt->machine.nodeOf(comm_->globalRanks[static_cast<std::size_t>(localRank)]);
}
sim::Clock& Comm::clock() { return me_->clock; }
const sim::MachineModel& Comm::machine() const { return comm_->rt->machine; }

// ---- Point-to-point --------------------------------------------------------

void Comm::send(const void* buf, int count, const Datatype& type, int dest, int tag) {
  MVIO_CHECK(dest >= 0 && dest < size(), "send: bad destination rank");
  MVIO_CHECK(count >= 0, "send: negative count");
  MVIO_CHECK(tag >= 0, "send: tag must be >= 0");
  if (comm_->rt->aborted.load()) detail::throwAborted();

  Envelope env;
  env.source = localRank_;
  env.tag = tag;
  if (count > 0) {
    MVIO_CHECK(buf != nullptr, "send: null buffer with nonzero count");
    type.pack(buf, count, env.payload);
  }

  // Blocking-send semantics: the sender's clock advances by the modelled
  // transfer; the message is ready at the receiver at that same instant.
  const double cost = comm_->rt->machine.transferSeconds(
      worldRank(), comm_->globalRanks[static_cast<std::size_t>(dest)], env.payload.size());
  me_->clock.advanceBy(cost);
  env.readyAt = me_->clock.now();

  Mailbox& mb = *comm_->mailboxes[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(mb.m);
    mb.q.push_back(std::move(env));
  }
  mb.cv.notify_all();
}

namespace {

bool matches(const Envelope& env, int source, int tag) {
  return (source == kAnySource || env.source == source) && (tag == kAnyTag || env.tag == tag);
}

}  // namespace

Status Comm::recv(void* buf, int maxCount, const Datatype& type, int source, int tag) {
  MVIO_CHECK(source == kAnySource || (source >= 0 && source < size()), "recv: bad source rank");
  MVIO_CHECK(maxCount >= 0, "recv: negative max count");

  Mailbox& mb = *comm_->mailboxes[static_cast<std::size_t>(localRank_)];
  Envelope env;
  {
    std::unique_lock<std::mutex> lock(mb.m);
    auto it = mb.q.end();
    mb.cv.wait(lock, [&] {
      if (comm_->rt->aborted.load()) return true;
      it = std::find_if(mb.q.begin(), mb.q.end(),
                        [&](const Envelope& e) { return matches(e, source, tag); });
      return it != mb.q.end();
    });
    if (comm_->rt->aborted.load()) detail::throwAborted();
    env = std::move(*it);
    mb.q.erase(it);
  }

  const std::uint64_t typeSize = type.size();
  MVIO_CHECK(typeSize > 0, "recv: zero-size datatype");
  MVIO_CHECK(env.payload.size() % typeSize == 0, "recv: message size is not a multiple of the datatype");
  const auto n = static_cast<int>(env.payload.size() / typeSize);
  MVIO_CHECK(n <= maxCount, "recv: message truncated (buffer too small)");
  if (n > 0) {
    MVIO_CHECK(buf != nullptr, "recv: null buffer");
    type.unpack(env.payload.data(), env.payload.size(), buf, n);
  }

  me_->clock.advanceTo(env.readyAt);
  return Status{env.source, env.tag, env.payload.size()};
}

Status Comm::probe(int source, int tag) {
  Mailbox& mb = *comm_->mailboxes[static_cast<std::size_t>(localRank_)];
  std::unique_lock<std::mutex> lock(mb.m);
  const Envelope* found = nullptr;
  mb.cv.wait(lock, [&] {
    if (comm_->rt->aborted.load()) return true;
    for (const auto& e : mb.q) {
      if (matches(e, source, tag)) {
        found = &e;
        return true;
      }
    }
    return false;
  });
  if (comm_->rt->aborted.load()) detail::throwAborted();
  me_->clock.advanceTo(found->readyAt);
  return Status{found->source, found->tag, found->payload.size()};
}

bool Comm::iprobe(int source, int tag, Status* status) {
  Mailbox& mb = *comm_->mailboxes[static_cast<std::size_t>(localRank_)];
  std::lock_guard<std::mutex> lock(mb.m);
  for (const auto& e : mb.q) {
    if (matches(e, source, tag)) {
      if (status != nullptr) *status = Status{e.source, e.tag, e.payload.size()};
      return true;
    }
  }
  return false;
}

// ---- Collective machinery --------------------------------------------------

namespace {

/// Runs one collective round: the last-arriving rank executes `exec` over
/// all registered args (filling per-rank completion times); everyone then
/// advances their clock to their completion.
template <typename Exec>
void runCollective(CommData& c, detail::RankContext& me, int localRank, CollArg arg, Exec&& exec) {
  auto& slot = c.coll;
  double myCompletion = 0.0;
  {
    std::unique_lock<std::mutex> lock(slot.m);
    if (c.rt->aborted.load()) detail::throwAborted();
    const std::uint64_t gen = slot.generation;
    arg.now = me.clock.now();
    slot.args[static_cast<std::size_t>(localRank)] = arg;
    if (++slot.arrived == c.size()) {
      exec(slot.args, slot.completion);
      slot.arrived = 0;
      ++slot.generation;
      myCompletion = slot.completion[static_cast<std::size_t>(localRank)];
      slot.cv.notify_all();
    } else {
      slot.cv.wait(lock, [&] { return slot.generation != gen || c.rt->aborted.load(); });
      if (c.rt->aborted.load()) detail::throwAborted();
      myCompletion = slot.completion[static_cast<std::size_t>(localRank)];
    }
  }
  me.clock.advanceTo(myCompletion);
}

double maxArrival(const std::vector<CollArg>& args) {
  double base = 0.0;
  for (const auto& a : args) base = std::max(base, a.now);
  return base;
}

}  // namespace

void Comm::barrier() {
  const sim::LinkModel& link = comm_->spansNodes ? machine().interNode : machine().intraNode;
  const int depth = detail::treeDepth(size());
  runCollective(*comm_, *me_, localRank_, CollArg{},
                [&](const std::vector<CollArg>& args, std::vector<double>& done) {
                  const double t = maxArrival(args) + depth * link.latency;
                  std::fill(done.begin(), done.end(), t);
                });
}

void Comm::syncClocks() {
  runCollective(*comm_, *me_, localRank_, CollArg{},
                [&](const std::vector<CollArg>& args, std::vector<double>& done) {
                  std::fill(done.begin(), done.end(), maxArrival(args));
                });
}

void Comm::bcast(void* buf, int count, const Datatype& type, int root) {
  MVIO_CHECK(root >= 0 && root < size(), "bcast: bad root");
  MVIO_CHECK(count >= 0, "bcast: negative count");
  const sim::LinkModel& link = comm_->spansNodes ? machine().interNode : machine().intraNode;
  const int depth = detail::treeDepth(size());
  const std::uint64_t bytes = type.size() * static_cast<std::uint64_t>(count);

  CollArg arg;
  arg.recv = buf;
  arg.a = root;
  arg.count = count;
  runCollective(*comm_, *me_, localRank_, arg,
                [&](const std::vector<CollArg>& args, std::vector<double>& done) {
                  // Relay root's element bytes into every other buffer
                  // (pack once, unpack per receiver — handles any typemap).
                  const auto& rootArg = args[static_cast<std::size_t>(root)];
                  if (count > 0) {
                    std::string payload;
                    type.pack(rootArg.recv, count, payload);
                    for (int i = 0; i < size(); ++i) {
                      if (i == root) continue;
                      type.unpack(payload.data(), payload.size(), args[static_cast<std::size_t>(i)].recv,
                                  count);
                    }
                  }
                  const double t = maxArrival(args) + depth * link.transferSeconds(bytes);
                  std::fill(done.begin(), done.end(), t);
                });
}

void Comm::gather(const void* sendBuf, int count, const Datatype& type, void* recvBuf, int root) {
  std::vector<int> counts;
  std::vector<int> displs;
  if (localRank_ == root) {
    counts.assign(static_cast<std::size_t>(size()), count);
    displs.resize(static_cast<std::size_t>(size()));
    for (int i = 0; i < size(); ++i) displs[static_cast<std::size_t>(i)] = i * count;
  }
  gatherv(sendBuf, count, type, recvBuf, counts.empty() ? nullptr : counts.data(),
          displs.empty() ? nullptr : displs.data(), root);
}

void Comm::gatherv(const void* sendBuf, int sendCount, const Datatype& type, void* recvBuf,
                   const int* recvCounts, const int* displs, int root) {
  MVIO_CHECK(root >= 0 && root < size(), "gatherv: bad root");
  MVIO_CHECK(sendCount >= 0, "gatherv: negative send count");
  const sim::LinkModel& link = comm_->spansNodes ? machine().interNode : machine().intraNode;
  const int depth = detail::treeDepth(size());

  CollArg arg;
  arg.send = sendBuf;
  arg.recv = recvBuf;
  arg.rcounts = recvCounts;
  arg.rdispls = displs;
  arg.count = sendCount;
  arg.a = root;
  runCollective(
      *comm_, *me_, localRank_, arg, [&](const std::vector<CollArg>& args, std::vector<double>& done) {
        const auto& rootArg = args[static_cast<std::size_t>(root)];
        MVIO_CHECK(rootArg.rcounts != nullptr && rootArg.rdispls != nullptr,
                   "gatherv: root must supply counts and displacements");
        const auto ext = static_cast<std::int64_t>(type.extent());
        std::uint64_t totalBytes = 0;
        for (int i = 0; i < size(); ++i) {
          const auto& src = args[static_cast<std::size_t>(i)];
          MVIO_CHECK(src.count == rootArg.rcounts[i], "gatherv: send count mismatch with root's recvCounts");
          if (src.count == 0) continue;
          std::string payload;
          type.pack(src.send, src.count, payload);
          totalBytes += payload.size();
          char* dst = static_cast<char*>(rootArg.recv) + rootArg.rdispls[i] * ext;
          type.unpack(payload.data(), payload.size(), dst, src.count);
        }
        const double base = maxArrival(args);
        const double rootDone = base + depth * link.latency + static_cast<double>(totalBytes) / link.bytesPerSecond;
        for (int i = 0; i < size(); ++i) {
          const auto& src = args[static_cast<std::size_t>(i)];
          const std::uint64_t selfBytes = type.size() * static_cast<std::uint64_t>(src.count);
          done[static_cast<std::size_t>(i)] =
              i == root ? rootDone : base + link.transferSeconds(selfBytes);
        }
      });
}

void Comm::allgather(const void* sendBuf, int count, const Datatype& type, void* recvBuf) {
  MVIO_CHECK(count >= 0, "allgather: negative count");
  const sim::LinkModel& link = comm_->spansNodes ? machine().interNode : machine().intraNode;
  const int depth = detail::treeDepth(size());

  CollArg arg;
  arg.send = sendBuf;
  arg.recv = recvBuf;
  arg.count = count;
  runCollective(*comm_, *me_, localRank_, arg,
                [&](const std::vector<CollArg>& args, std::vector<double>& done) {
                  const auto ext = static_cast<std::int64_t>(type.extent());
                  std::string payload;
                  for (int i = 0; i < size(); ++i) {
                    payload.clear();
                    const auto& src = args[static_cast<std::size_t>(i)];
                    if (count == 0) continue;
                    type.pack(src.send, count, payload);
                    for (int j = 0; j < size(); ++j) {
                      char* dst = static_cast<char*>(args[static_cast<std::size_t>(j)].recv) +
                                  static_cast<std::int64_t>(i) * count * ext;
                      type.unpack(payload.data(), payload.size(), dst, count);
                    }
                  }
                  const std::uint64_t perRank = type.size() * static_cast<std::uint64_t>(count);
                  const double t = maxArrival(args) + depth * link.latency +
                                   static_cast<double>((size() - 1) * perRank) / link.bytesPerSecond;
                  std::fill(done.begin(), done.end(), t);
                });
}

void Comm::alltoall(const void* sendBuf, int countPerRank, const Datatype& type, void* recvBuf) {
  std::vector<int> counts(static_cast<std::size_t>(size()), countPerRank);
  std::vector<int> displs(static_cast<std::size_t>(size()));
  for (int i = 0; i < size(); ++i) displs[static_cast<std::size_t>(i)] = i * countPerRank;
  alltoallv(sendBuf, counts.data(), displs.data(), recvBuf, counts.data(), displs.data(), type);
}

void Comm::alltoallv(const void* sendBuf, const int* sendCounts, const int* sendDispls, void* recvBuf,
                     const int* recvCounts, const int* recvDispls, const Datatype& type) {
  MVIO_CHECK(sendCounts != nullptr && sendDispls != nullptr, "alltoallv: null send metadata");
  MVIO_CHECK(recvCounts != nullptr && recvDispls != nullptr, "alltoallv: null recv metadata");
  const sim::LinkModel& link = comm_->spansNodes ? machine().interNode : machine().intraNode;

  CollArg arg;
  arg.send = sendBuf;
  arg.recv = recvBuf;
  arg.scounts = sendCounts;
  arg.sdispls = sendDispls;
  arg.rcounts = recvCounts;
  arg.rdispls = recvDispls;
  runCollective(
      *comm_, *me_, localRank_, arg, [&](const std::vector<CollArg>& args, std::vector<double>& done) {
        const auto ext = static_cast<std::int64_t>(type.extent());
        const int p = size();
        std::string payload;
        for (int i = 0; i < p; ++i) {
          const auto& src = args[static_cast<std::size_t>(i)];
          for (int j = 0; j < p; ++j) {
            const auto& dst = args[static_cast<std::size_t>(j)];
            const int n = src.scounts[j];
            MVIO_CHECK(n == dst.rcounts[i], "alltoallv: send/recv count mismatch");
            if (n == 0) continue;
            payload.clear();
            const char* from = static_cast<const char*>(src.send) + src.sdispls[j] * ext;
            type.pack(from, n, payload);
            char* to = static_cast<char*>(dst.recv) + dst.rdispls[i] * ext;
            type.unpack(payload.data(), payload.size(), to, n);
          }
        }
        // Per-rank completion: startup per peer + (bytes out + bytes in)
        // serialized through the rank's link.
        const double base = maxArrival(args);
        const std::uint64_t typeSize = type.size();
        for (int i = 0; i < p; ++i) {
          const auto& a = args[static_cast<std::size_t>(i)];
          std::uint64_t out = 0, in = 0;
          for (int j = 0; j < p; ++j) {
            out += static_cast<std::uint64_t>(a.scounts[j]);
            in += static_cast<std::uint64_t>(a.rcounts[j]);
          }
          out *= typeSize;
          in *= typeSize;
          done[static_cast<std::size_t>(i)] =
              base + (p - 1) * link.latency + static_cast<double>(out + in) / link.bytesPerSecond;
        }
      });
}

namespace {

/// Right-fold of all rank buffers in rank order (MPI canonical order for
/// non-commutative operators): result = buf0 op (buf1 op (... op bufP-1)).
/// Returns measured CPU seconds spent applying `op`.
double foldBuffers(const std::vector<CollArg>& args, std::string& acc, int count, const Datatype& type,
                   const Op& op) {
  const int p = static_cast<int>(args.size());
  acc.clear();
  type.pack(args[static_cast<std::size_t>(p - 1)].send, count, acc);
  sim::ThreadCpuTimer cpu;
  std::string inBuf;
  for (int i = p - 2; i >= 0; --i) {
    inBuf.clear();
    type.pack(args[static_cast<std::size_t>(i)].send, count, inBuf);
    // acc = in (op) acc, both as contiguous payload buffers.
    op.apply(inBuf.data(), acc.data(), count, type);
  }
  return cpu.elapsed();
}

}  // namespace

void Comm::reduce(const void* sendBuf, void* recvBuf, int count, const Datatype& type, const Op& op,
                  int root) {
  MVIO_CHECK(root >= 0 && root < size(), "reduce: bad root");
  MVIO_CHECK(count >= 0, "reduce: negative count");
  const sim::LinkModel& link = comm_->spansNodes ? machine().interNode : machine().intraNode;
  const int depth = detail::treeDepth(size());
  const std::uint64_t bytes = type.size() * static_cast<std::uint64_t>(count);

  CollArg arg;
  arg.send = sendBuf;
  arg.recv = recvBuf;
  arg.count = count;
  arg.a = root;
  runCollective(*comm_, *me_, localRank_, arg,
                [&](const std::vector<CollArg>& args, std::vector<double>& done) {
                  double opCpu = 0.0;
                  if (count > 0) {
                    std::string acc;
                    opCpu = foldBuffers(args, acc, count, type, op);
                    type.unpack(acc.data(), acc.size(), args[static_cast<std::size_t>(root)].recv, count);
                  }
                  // Tree reduction: `depth` levels, each moving the buffer
                  // once and applying the operator once (pairs in parallel).
                  const double perOp = size() > 1 ? opCpu / (size() - 1) : 0.0;
                  const double t = maxArrival(args) + depth * (link.transferSeconds(bytes) + perOp);
                  std::fill(done.begin(), done.end(), t);
                });
}

void Comm::allreduce(const void* sendBuf, void* recvBuf, int count, const Datatype& type, const Op& op) {
  MVIO_CHECK(count >= 0, "allreduce: negative count");
  const sim::LinkModel& link = comm_->spansNodes ? machine().interNode : machine().intraNode;
  const int depth = detail::treeDepth(size());
  const std::uint64_t bytes = type.size() * static_cast<std::uint64_t>(count);

  CollArg arg;
  arg.send = sendBuf;
  arg.recv = recvBuf;
  arg.count = count;
  runCollective(*comm_, *me_, localRank_, arg,
                [&](const std::vector<CollArg>& args, std::vector<double>& done) {
                  double opCpu = 0.0;
                  if (count > 0) {
                    std::string acc;
                    opCpu = foldBuffers(args, acc, count, type, op);
                    for (const auto& a : args) type.unpack(acc.data(), acc.size(), a.recv, count);
                  }
                  // Reduce + broadcast trees.
                  const double perOp = size() > 1 ? opCpu / (size() - 1) : 0.0;
                  const double t =
                      maxArrival(args) + depth * (2.0 * link.transferSeconds(bytes) + perOp);
                  std::fill(done.begin(), done.end(), t);
                });
}

void Comm::scan(const void* sendBuf, void* recvBuf, int count, const Datatype& type, const Op& op) {
  MVIO_CHECK(count >= 0, "scan: negative count");
  const sim::LinkModel& link = comm_->spansNodes ? machine().interNode : machine().intraNode;
  const int depth = detail::treeDepth(size());
  const std::uint64_t bytes = type.size() * static_cast<std::uint64_t>(count);

  CollArg arg;
  arg.send = sendBuf;
  arg.recv = recvBuf;
  arg.count = count;
  runCollective(
      *comm_, *me_, localRank_, arg, [&](const std::vector<CollArg>& args, std::vector<double>& done) {
        double opCpu = 0.0;
        if (count > 0) {
          // Inclusive prefix in rank order: recv_i = s_0 op ... op s_i.
          // Computed as a running right-accumulation: each step folds the
          // next rank's buffer in on the left-to-right prefix. For
          // associative ops prefix_i = prefix_{i-1} op s_i.
          std::string acc;
          type.pack(args[0].send, count, acc);
          type.unpack(acc.data(), acc.size(), args[0].recv, count);
          sim::ThreadCpuTimer cpu;
          std::string inBuf;
          for (int i = 1; i < size(); ++i) {
            // acc = acc (op) s_i. The op computes inout = in op inout, so
            // pass acc as `in` and s_i's copy as `inout` to preserve order.
            inBuf.clear();
            type.pack(args[static_cast<std::size_t>(i)].send, count, inBuf);
            op.apply(acc.data(), inBuf.data(), count, type);
            acc.swap(inBuf);
            type.unpack(acc.data(), acc.size(), args[static_cast<std::size_t>(i)].recv, count);
          }
          opCpu = cpu.elapsed();
        }
        const double perOp = size() > 1 ? opCpu / (size() - 1) : 0.0;
        const double t = maxArrival(args) + depth * (link.transferSeconds(bytes) + perOp);
        std::fill(done.begin(), done.end(), t);
      });
}

double Comm::allreduceMax(double value) {
  double out = 0.0;
  allreduce(&value, &out, 1, Datatype::float64(), Op::max());
  return out;
}

double Comm::allreduceSum(double value) {
  double out = 0.0;
  allreduce(&value, &out, 1, Datatype::float64(), Op::sum());
  return out;
}

std::uint64_t Comm::allreduceSumU64(std::uint64_t value) {
  std::uint64_t out = 0;
  allreduce(&value, &out, 1, Datatype::uint64(), Op::sum());
  return out;
}

// ---- split -----------------------------------------------------------------

Comm Comm::split(int color, int key) {
  MVIO_CHECK(color >= 0, "split: color must be >= 0");
  CollArg arg;
  arg.a = color;
  arg.b = key;
  detail::RuntimeState* rt = comm_->rt;
  CommData* parent = comm_;
  const sim::LinkModel& link = comm_->spansNodes ? machine().interNode : machine().intraNode;
  const int depth = detail::treeDepth(size());

  runCollective(
      *comm_, *me_, localRank_, arg, [&](const std::vector<CollArg>& args, std::vector<double>& done) {
        // Group local ranks by color, order by (key, world rank).
        struct Member {
          int color;
          int key;
          int localRank;
        };
        std::vector<Member> members;
        for (int i = 0; i < parent->size(); ++i) {
          members.push_back({args[static_cast<std::size_t>(i)].a, args[static_cast<std::size_t>(i)].b, i});
        }
        std::sort(members.begin(), members.end(), [&](const Member& x, const Member& y) {
          if (x.color != y.color) return x.color < y.color;
          if (x.key != y.key) return x.key < y.key;
          return parent->globalRanks[static_cast<std::size_t>(x.localRank)] <
                 parent->globalRanks[static_cast<std::size_t>(y.localRank)];
        });
        std::size_t i = 0;
        while (i < members.size()) {
          std::size_t j = i;
          while (j < members.size() && members[j].color == members[i].color) ++j;
          auto sub = std::make_shared<CommData>();
          std::vector<int> globals;
          for (std::size_t k = i; k < j; ++k) {
            globals.push_back(parent->globalRanks[static_cast<std::size_t>(members[k].localRank)]);
          }
          rt->initComm(*sub, std::move(globals));
          {
            std::lock_guard<std::mutex> lock(rt->subMutex);
            rt->subComms.push_back(sub);
          }
          for (std::size_t k = i; k < j; ++k) {
            parent->coll.splitComm[static_cast<std::size_t>(members[k].localRank)] = sub;
            parent->coll.splitLocalRank[static_cast<std::size_t>(members[k].localRank)] =
                static_cast<int>(k - i);
          }
          i = j;
        }
        const double t = maxArrival(args) + depth * link.latency;
        std::fill(done.begin(), done.end(), t);
      });

  // Pick up this rank's result (written under the collective lock).
  std::shared_ptr<CommData> sub;
  int newLocal = 0;
  {
    std::lock_guard<std::mutex> lock(parent->coll.m);
    sub = parent->coll.splitComm[static_cast<std::size_t>(localRank_)];
    newLocal = parent->coll.splitLocalRank[static_cast<std::size_t>(localRank_)];
    parent->coll.splitComm[static_cast<std::size_t>(localRank_)].reset();
  }
  MVIO_CHECK(sub != nullptr, "split: internal error (no group assigned)");
  return Comm(sub.get(), me_, newLocal);
}

// ---- Runtime ---------------------------------------------------------------

void Runtime::run(int nprocs, const sim::MachineModel& machine, const std::function<void(Comm&)>& fn) {
  MVIO_CHECK(nprocs >= 1, "need at least one rank");
  MVIO_CHECK(nprocs <= machine.totalRanks(),
             "machine model too small: " + std::to_string(nprocs) + " ranks > " +
                 std::to_string(machine.totalRanks()) + " slots");
  MVIO_CHECK(fn != nullptr, "rank function required");

  detail::RuntimeState rt;
  rt.machine = machine;
  rt.nprocs = nprocs;
  rt.ranks.resize(static_cast<std::size_t>(nprocs));
  std::vector<int> globals(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    rt.ranks[static_cast<std::size_t>(i)].worldRank = i;
    globals[static_cast<std::size_t>(i)] = i;
  }
  rt.initComm(rt.world, std::move(globals));

  std::mutex errMutex;
  std::exception_ptr firstError;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    threads.emplace_back([&, i] {
      Comm comm(&rt.world, &rt.ranks[static_cast<std::size_t>(i)], i);
      // Thread-local observability context: rank id + virtual clock for
      // the logger and any obs::Session the rank function installs.
      obs::detail::RankScope obsScope(i, &rt.ranks[static_cast<std::size_t>(i)].clock);
      try {
        fn(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(errMutex);
          if (!firstError) firstError = std::current_exception();
        }
        rt.abortAll();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

void Runtime::run(int nprocs, const std::function<void(Comm&)>& fn) {
  run(nprocs, sim::MachineModel::testbed(nprocs), fn);
}

}  // namespace mvio::mpi
