#pragma once
// Reduction operators. MPI's built-in MIN/MAX/SUM work on the basic
// datatypes; the paper's contribution is that *user-defined* operators
// created with MPI_Op_create extend reductions to spatial types
// (MPI_UNION over MBRs, MIN/MAX by geometric size) — see
// src/core/spatial_types.hpp for those definitions. An Op combines
// `count` elements of `in` into `inout` in place, and must be
// associative (commutativity is advisory, as in MPI).

#include <functional>
#include <memory>
#include <string>

#include "mpi/datatype.hpp"

namespace mvio::mpi {

class Op {
 public:
  /// in/inout point at `count` elements laid out with the datatype's
  /// extent; the function must compute inout[i] = op(in[i], inout[i]).
  using Function = std::function<void(const void* in, void* inout, int count, const Datatype& type)>;

  Op() = default;

  /// MPI_Op_create equivalent.
  static Op create(Function fn, bool commutative, std::string name = "user");

  /// Built-ins; defined for INT32/INT64/UINT64/FLOAT32/FLOAT64.
  static Op sum();
  static Op min();
  static Op max();

  void apply(const void* in, void* inout, int count, const Datatype& type) const;
  [[nodiscard]] bool commutative() const;
  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

 private:
  struct Impl {
    Function fn;
    bool commutative = true;
    std::string name;
  };
  std::shared_ptr<const Impl> impl_;
};

}  // namespace mvio::mpi
