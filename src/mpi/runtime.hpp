#pragma once
// MPI-subset runtime: threads as ranks (see DESIGN.md §2).
//
// Runtime::run(P, machine, fn) launches P rank threads, each receiving a
// Comm handle for the world communicator. Ranks exchange real bytes
// through per-communicator mailboxes with MPI tag/source matching;
// collectives are executed by the last-arriving rank over the registered
// buffers of all participants (the shared address space stands in for the
// network, the *cost model* stands in for its timing).
//
// Timing semantics:
//  * Each rank owns a sim::Clock.
//  * send() charges the alpha-beta transfer cost of the message and stamps
//    the envelope with its completion time; recv() synchronises the
//    receiver's clock to max(own, envelope ready time).
//  * Collectives synchronise all participants to the max arrival clock
//    plus a tree-model cost (log2(P) levels).
//  * Compute phases are charged explicitly with CpuCharge, which measures
//    per-thread CPU time (immune to host oversubscription).
//
// Blocking semantics: send() is buffered (never blocks on the receiver),
// recv()/probe() block until a matching message arrives. The paper's
// Algorithm 1 even/odd ring protocol therefore runs verbatim.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mpi/datatype.hpp"
#include "mpi/op.hpp"
#include "sim/clock.hpp"
#include "sim/machine.hpp"

namespace mvio::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Result of a receive or probe.
struct Status {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;

  /// MPI_Get_count: number of `type` elements in the message, or -1 when
  /// the byte count is not a whole multiple (MPI_UNDEFINED).
  [[nodiscard]] int count(const Datatype& type) const {
    const std::uint64_t sz = type.size();
    if (sz == 0 || bytes % sz != 0) return -1;
    return static_cast<int>(bytes / sz);
  }
};

namespace detail {
struct RuntimeState;
struct CommData;
struct RankContext;
}  // namespace detail

/// Communicator handle (cheap to copy; references runtime-owned state).
class Comm {
 public:
  [[nodiscard]] int rank() const { return localRank_; }
  [[nodiscard]] int size() const;
  /// Rank id in the world communicator.
  [[nodiscard]] int worldRank() const;
  /// Compute node hosting this rank per the machine model.
  [[nodiscard]] int nodeId() const;
  /// Compute node hosting any rank of this communicator.
  [[nodiscard]] int nodeOfRank(int localRank) const;
  [[nodiscard]] sim::Clock& clock();
  [[nodiscard]] const sim::MachineModel& machine() const;

  // ---- Point-to-point ----------------------------------------------------
  void send(const void* buf, int count, const Datatype& type, int dest, int tag);
  Status recv(void* buf, int maxCount, const Datatype& type, int source, int tag);
  /// Blocking probe: waits until a matching message is available.
  Status probe(int source, int tag);
  /// Non-blocking probe.
  bool iprobe(int source, int tag, Status* status);

  // ---- Collectives ---------------------------------------------------------
  void barrier();
  void bcast(void* buf, int count, const Datatype& type, int root);
  /// Fixed-size gather; `recv` significant at root only (size*count elems).
  void gather(const void* sendBuf, int count, const Datatype& type, void* recvBuf, int root);
  /// Variable gather; counts/displs (in elements) significant at root only.
  void gatherv(const void* sendBuf, int sendCount, const Datatype& type, void* recvBuf,
               const int* recvCounts, const int* displs, int root);
  void allgather(const void* sendBuf, int count, const Datatype& type, void* recvBuf);
  void alltoall(const void* sendBuf, int countPerRank, const Datatype& type, void* recvBuf);
  /// Irregular personalized all-to-all; one datatype for both sides, as the
  /// paper notes MPI requires. Counts and displacements are in elements.
  void alltoallv(const void* sendBuf, const int* sendCounts, const int* sendDispls, void* recvBuf,
                 const int* recvCounts, const int* recvDispls, const Datatype& type);
  void reduce(const void* sendBuf, void* recvBuf, int count, const Datatype& type, const Op& op, int root);
  void allreduce(const void* sendBuf, void* recvBuf, int count, const Datatype& type, const Op& op);
  /// Inclusive prefix reduction (MPI_Scan).
  void scan(const void* sendBuf, void* recvBuf, int count, const Datatype& type, const Op& op);

  // ---- Convenience scalars (used heavily by harnesses) --------------------
  [[nodiscard]] double allreduceMax(double value);
  [[nodiscard]] double allreduceSum(double value);
  [[nodiscard]] std::uint64_t allreduceSumU64(std::uint64_t value);
  /// Synchronise every participant's clock to the global max (barrier with
  /// clock alignment; used between benchmark phases).
  void syncClocks();

  // ---- Communicator management -------------------------------------------
  /// MPI_Comm_split: ranks with equal color form a new communicator,
  /// ordered by (key, world rank). color must be >= 0.
  Comm split(int color, int key);

 private:
  friend class Runtime;
  friend struct detail::RuntimeState;
  Comm(detail::CommData* comm, detail::RankContext* me, int localRank)
      : comm_(comm), me_(me), localRank_(localRank) {}

  detail::CommData* comm_;
  detail::RankContext* me_;
  int localRank_;
};

/// Launches rank threads and owns all shared state for one parallel run.
class Runtime {
 public:
  /// Run `fn` on `nprocs` rank threads over the given machine model.
  /// Propagates the first rank exception after all threads join.
  static void run(int nprocs, const sim::MachineModel& machine, const std::function<void(Comm&)>& fn);

  /// Single-node testbed convenience for unit tests.
  static void run(int nprocs, const std::function<void(Comm&)>& fn);
};

/// RAII: measures this thread's CPU seconds and charges them to the rank's
/// virtual clock on destruction. `scale` calibrates host CPU speed to the
/// modelled testbed (1.0 = charge as measured).
class CpuCharge {
 public:
  explicit CpuCharge(Comm& comm, double scale = 1.0) : comm_(&comm), scale_(scale) {}

  CpuCharge(const CpuCharge&) = delete;
  CpuCharge& operator=(const CpuCharge&) = delete;

  /// Stop measuring and charge now; returns the charged virtual seconds.
  double stop() {
    if (comm_ == nullptr) return 0.0;
    const double t = timer_.elapsed() * scale_;
    comm_->clock().advanceBy(t);
    comm_ = nullptr;
    return t;
  }

  ~CpuCharge() { stop(); }

 private:
  Comm* comm_;
  double scale_;
  sim::ThreadCpuTimer timer_;
};

}  // namespace mvio::mpi
