#pragma once
// Versioned machine-readable run reports (DESIGN.md §14).
//
// A RunReport serializes one bench/run's reduced PhaseBreakdown, scalar
// result values (pair counts, makespans, bandwidths) and the cross-rank
// metric summaries into a single JSON document:
//
//   { "schema": "mvio.run_report", "version": 1, "name": ..., "setup": ...,
//     "phases": { "read": ..., ..., "rounds": ..., ... },
//     "values": { "<key>": <number>, ... },
//     "metrics": [ { "name": ..., "kind": "c|g|h", "count": ...,
//                    "min": ..., "max": ..., "sum": ..., "mean": ...,
//                    "p50": ..., "p99": ... }, ... ] }
//
// capturePhases() is the one reduction path: it calls
// PhaseBreakdown::maxAcross (a single collective since this PR) and
// keeps the reduced struct, so a bench table printed from the returned
// reference and the JSON emitted from the report can never disagree.
// scripts/check_bench.py validates the schema and gates CI on tracked
// values against bench/baselines/*.json.

#include <string>
#include <utility>
#include <vector>

#include "core/phases.hpp"
#include "obs/metrics.hpp"

namespace mvio::obs {

struct RunReport {
  static constexpr int kVersion = 1;

  std::string name;   ///< bench/run identifier ("overlap", "fig08", ...)
  std::string setup;  ///< free-text configuration line
  bool hasPhases = false;
  core::PhaseBreakdown phases;  ///< max-reduced across ranks
  std::vector<std::pair<std::string, double>> values;
  std::vector<MetricSummary> metrics;

  /// Reduce `local` across ranks (single collective); rank 0 keeps the
  /// result in the report, every rank gets it returned for table
  /// printing — one reduction feeding both, so they cannot disagree.
  /// Collective; safe to call on a report shared across rank threads.
  core::PhaseBreakdown capturePhases(mpi::Comm& comm, const core::PhaseBreakdown& local);

  /// Aggregate the thread-local metrics registry across ranks into the
  /// report (rank 0 keeps the summaries). Collective.
  void captureMetrics(mpi::Comm& comm);

  void addValue(const std::string& key, double v) { values.emplace_back(key, v); }

  [[nodiscard]] std::string toJson() const;

  /// Write toJson() to `path` on the host filesystem.
  void writeFile(const std::string& path) const;
};

}  // namespace mvio::obs
