#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace mvio::obs {

namespace {

void appendJsonString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";  // JSON has no inf/nan; reports carry finite data only
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void appendField(std::string& out, bool& first, const std::string& key, double v) {
  if (!first) out.push_back(',');
  first = false;
  appendJsonString(out, key);
  out.push_back(':');
  appendNumber(out, v);
}

}  // namespace

core::PhaseBreakdown RunReport::capturePhases(mpi::Comm& comm,
                                              const core::PhaseBreakdown& local) {
  const core::PhaseBreakdown reduced = local.maxAcross(comm);
  if (comm.rank() == 0) {
    phases = reduced;
    hasPhases = true;
  }
  return reduced;
}

void RunReport::captureMetrics(mpi::Comm& comm) {
  std::vector<MetricSummary> merged = aggregateMetrics(comm);
  if (comm.rank() == 0) metrics = std::move(merged);
}

std::string RunReport::toJson() const {
  std::string out;
  out += "{\"schema\":\"mvio.run_report\",\"version\":" + std::to_string(kVersion) + ",";
  out += "\"name\":";
  appendJsonString(out, name);
  out += ",\"setup\":";
  appendJsonString(out, setup);
  out += ",\"phases\":{";
  if (hasPhases) {
    const core::PhaseBreakdown& p = phases;
    bool first = true;
    appendField(out, first, "read", p.read);
    appendField(out, first, "parse", p.parse);
    appendField(out, first, "partition", p.partition);
    appendField(out, first, "comm", p.comm);
    appendField(out, first, "compute", p.compute);
    appendField(out, first, "spill", p.spill);
    appendField(out, first, "migrate", p.migrate);
    appendField(out, first, "checkpoint", p.checkpoint);
    appendField(out, first, "recovery", p.recovery);
    appendField(out, first, "compaction", p.compaction);
    appendField(out, first, "overlapped", p.overlapped);
    appendField(out, first, "workerCpu", p.workerCpu);
    appendField(out, first, "workerCritical", p.workerCritical);
    appendField(out, first, "total", p.total());
    appendField(out, first, "rounds", static_cast<double>(p.rounds));
    appendField(out, first, "refineSpillBytes", static_cast<double>(p.refineSpillBytes));
    appendField(out, first, "migrateBytes", static_cast<double>(p.migrateBytes));
    appendField(out, first, "migrateRounds", static_cast<double>(p.migrateRounds));
    appendField(out, first, "checkpointBytes", static_cast<double>(p.checkpointBytes));
    appendField(out, first, "checkpointEpochs", static_cast<double>(p.checkpointEpochs));
    appendField(out, first, "recoveryBytes", static_cast<double>(p.recoveryBytes));
    appendField(out, first, "recoveryRounds", static_cast<double>(p.recoveryRounds));
    appendField(out, first, "compactionBytes", static_cast<double>(p.compactionBytes));
    appendField(out, first, "reclaimedBytes", static_cast<double>(p.reclaimedBytes));
  }
  out += "},\"values\":{";
  {
    bool first = true;
    for (const auto& [key, v] : values) appendField(out, first, key, v);
  }
  out += "},\"metrics\":[";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricSummary& m = metrics[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    appendJsonString(out, m.name);
    out += ",\"kind\":\"";
    out.push_back(m.kind);
    out += "\"";
    bool first = false;
    appendField(out, first, "count", static_cast<double>(m.count));
    appendField(out, first, "min", m.min);
    appendField(out, first, "max", m.max);
    appendField(out, first, "sum", m.sum);
    appendField(out, first, "mean", m.mean);
    appendField(out, first, "p50", m.p50);
    appendField(out, first, "p99", m.p99);
    out += "}";
  }
  out += "]}\n";
  return out;
}

void RunReport::writeFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MVIO_CHECK(out.good(), "cannot open report output file: " + path);
  out << toJson();
  MVIO_CHECK(out.good(), "failed writing report output file: " + path);
}

}  // namespace mvio::obs
