#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

#include "mpi/runtime.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace mvio::obs {

ObsContext& obsContext() {
  thread_local ObsContext ctx;
  return ctx;
}

Session::Session(const TraceConfig& cfg, int workerLanes)
    : metrics_(std::make_unique<MetricsRegistry>()) {
  MVIO_CHECK(workerLanes >= 0, "negative worker lane count");
  if (cfg.enabled) {
    MVIO_CHECK(cfg.laneCapacity >= 1, "trace lane capacity must be at least 1");
    tracer_ = std::make_unique<Tracer>(cfg, workerLanes);
  }
  ObsContext& c = obsContext();
  c.tracer = tracer_.get();
  c.metrics = metrics_.get();
  c.lane = Tracer::mainLane();
}

Session::~Session() {
  ObsContext& c = obsContext();
  if (c.tracer == tracer_.get()) c.tracer = nullptr;
  if (c.metrics == metrics_.get()) c.metrics = nullptr;
}

void traceSpanAt(const char* name, double t0, double t1) {
  const ObsContext& c = obsContext();
  if (c.tracer == nullptr) return;
  traceSpanAtLane(c.lane, name, t0, t1);
}

void traceSpanAtLane(int lane, const char* name, double t0, double t1) {
  const ObsContext& c = obsContext();
  if (c.tracer == nullptr) return;
  TraceLane& l = c.tracer->lane(lane);
  l.emit(name, t0, EventType::kBegin);
  l.emit(name, t1 < t0 ? t0 : t1, EventType::kEnd);
}

void traceBegin(const char* name) {
  const ObsContext& c = obsContext();
  if (c.tracer == nullptr || c.clock == nullptr) return;
  c.tracer->lane(c.lane).emit(name, c.clock->now(), EventType::kBegin);
}

void traceEnd(const char* name) {
  const ObsContext& c = obsContext();
  if (c.tracer == nullptr || c.clock == nullptr) return;
  c.tracer->lane(c.lane).emit(name, c.clock->now(), EventType::kEnd);
}

void traceInstant(const char* name, std::string detail) {
  const ObsContext& c = obsContext();
  if (c.tracer == nullptr || c.clock == nullptr) return;
  c.tracer->lane(c.lane).emit(name, c.clock->now(), EventType::kInstant, std::move(detail));
}

void traceWorkerSpans(const char* name, double base, const std::vector<double>& perWorkerCpu) {
  const ObsContext& c = obsContext();
  if (c.tracer == nullptr) return;
  const int lanes = c.tracer->workerLanes();
  for (std::size_t w = 0; w < perWorkerCpu.size() && static_cast<int>(w) < lanes; ++w) {
    if (perWorkerCpu[w] <= 0) continue;
    traceSpanAtLane(Tracer::workerLane(static_cast<int>(w)), name, base, base + perWorkerCpu[w]);
  }
}

namespace {

/// Wire format of one rank's lanes (gathered to rank 0):
///   u32 laneCount, u32 workerLanes,
///   per lane: u64 drops, u32 eventCount,
///     per event: u8 type, f64 t, u32 nameLen + bytes, u32 detailLen + bytes.
std::string encodeLocalLanes(const Tracer* tracer) {
  std::string out;
  if (tracer == nullptr) {
    util::putScalar<std::uint32_t>(out, 0);
    util::putScalar<std::uint32_t>(out, 0);
    return out;
  }
  util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(tracer->laneCount()));
  util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(tracer->workerLanes()));
  for (int i = 0; i < tracer->laneCount(); ++i) {
    const TraceLane& lane = tracer->lane(i);
    const std::vector<TraceEvent> events = lane.snapshot();
    util::putScalar<std::uint64_t>(out, lane.drops());
    util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(events.size()));
    for (const TraceEvent& ev : events) {
      util::putScalar<std::uint8_t>(out, static_cast<std::uint8_t>(ev.type));
      util::putScalar<double>(out, ev.t);
      const std::size_t nameLen = std::char_traits<char>::length(ev.name);
      util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(nameLen));
      util::putBytes(out, ev.name, nameLen);
      util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(ev.detail.size()));
      util::putBytes(out, ev.detail.data(), ev.detail.size());
    }
  }
  return out;
}

struct Cursor {
  const char* p;
  const char* end;

  template <typename T>
  T take() {
    MVIO_CHECK(p + sizeof(T) <= end, "trace decode past end");
    const T v = util::readScalar<T>(p);
    p += sizeof(T);
    return v;
  }

  std::string takeString() {
    const std::uint32_t n = take<std::uint32_t>();
    MVIO_CHECK(p + n <= end, "trace decode past end");
    std::string s(p, n);
    p += n;
    return s;
  }
};

void appendJsonString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void appendNumber(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

std::string laneName(std::uint32_t lane, std::uint32_t workers) {
  if (lane == 0) return "main";
  if (lane <= workers) return "worker " + std::to_string(lane - 1);
  return lane == workers + 1 ? "prep" : "flush";
}

}  // namespace

std::uint64_t writeChromeTrace(mpi::Comm& comm, const std::string& path) {
  const std::string mine = encodeLocalLanes(obsContext().tracer);
  const int p = comm.size();
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(p), 0);
  const std::uint64_t mySize = mine.size();
  comm.gather(&mySize, 1, mpi::Datatype::uint64(), sizes.data(), 0);

  std::vector<int> counts(static_cast<std::size_t>(p), 0);
  std::vector<int> displs(static_cast<std::size_t>(p), 0);
  std::uint64_t total = 0;
  for (int rk = 0; rk < p; ++rk) {
    displs[static_cast<std::size_t>(rk)] = static_cast<int>(total);
    counts[static_cast<std::size_t>(rk)] = static_cast<int>(sizes[static_cast<std::size_t>(rk)]);
    total += sizes[static_cast<std::size_t>(rk)];
  }
  std::string all(static_cast<std::size_t>(total), '\0');
  comm.gatherv(mine.data(), static_cast<int>(mine.size()), mpi::Datatype::byte(), all.data(),
               counts.data(), displs.data(), 0);
  if (comm.rank() != 0) return 0;

  // Rank 0 renders the JSON: one process per rank, one thread per lane.
  // End events whose begin fell off the ring (flight-recorder overflow)
  // are skipped so every lane's B/E sequence stays balanced.
  std::string json;
  json.reserve(all.size() + (all.size() >> 1) + 4096);
  json += "{\"traceEvents\":[";
  std::uint64_t written = 0;
  std::uint64_t totalDrops = 0;
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) json.push_back(',');
    first = false;
    json += line;
    ++written;
  };
  for (int rk = 0; rk < p; ++rk) {
    Cursor cur{all.data() + displs[static_cast<std::size_t>(rk)],
               all.data() + displs[static_cast<std::size_t>(rk)] +
                   counts[static_cast<std::size_t>(rk)]};
    const auto laneCount = cur.take<std::uint32_t>();
    const auto workers = cur.take<std::uint32_t>();
    if (laneCount > 0) {
      emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(rk) +
           ",\"args\":{\"name\":\"rank " + std::to_string(rk) + "\"}}");
    }
    for (std::uint32_t lane = 0; lane < laneCount; ++lane) {
      const auto drops = cur.take<std::uint64_t>();
      const auto n = cur.take<std::uint32_t>();
      totalDrops += drops;
      if (n > 0 || lane == 0) {
        std::string meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(rk) +
                           ",\"tid\":" + std::to_string(lane) + ",\"args\":{\"name\":";
        appendJsonString(meta, laneName(lane, workers));
        meta += "}}";
        emit(meta);
      }
      std::uint64_t depth = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto type = static_cast<EventType>(cur.take<std::uint8_t>());
        const double t = cur.take<double>();
        const std::string name = cur.takeString();
        const std::string detail = cur.takeString();
        if (type == EventType::kEnd) {
          if (depth == 0) continue;  // begin was dropped by the ring
          --depth;
        } else if (type == EventType::kBegin) {
          ++depth;
        }
        std::string line = "{\"name\":";
        appendJsonString(line, name);
        line += ",\"ph\":\"";
        line += type == EventType::kBegin ? 'B' : (type == EventType::kEnd ? 'E' : 'i');
        line += "\",\"pid\":" + std::to_string(rk) + ",\"tid\":" + std::to_string(lane) +
                ",\"ts\":";
        appendNumber(line, t * 1e6);  // virtual seconds -> trace microseconds
        if (type == EventType::kInstant) {
          line += ",\"s\":\"t\"";
          if (!detail.empty()) {
            line += ",\"args\":{\"detail\":";
            appendJsonString(line, detail);
            line += "}";
          }
        }
        line += "}";
        emit(line);
      }
      // Close spans the run left open (a rank that died mid-stream).
      for (; depth > 0; --depth) {
        emit("{\"name\":\"(unclosed)\",\"ph\":\"E\",\"pid\":" + std::to_string(rk) +
             ",\"tid\":" + std::to_string(lane) + ",\"ts\":1e15}");
      }
    }
  }
  json += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual\",\"droppedEvents\":\"" +
          std::to_string(totalDrops) + "\"}}\n";

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MVIO_CHECK(out.good(), "cannot open trace output file: " + path);
  out << json;
  MVIO_CHECK(out.good(), "failed writing trace output file: " + path);
  return written;
}

}  // namespace mvio::obs
