#pragma once
// Named metrics registry (DESIGN.md §14): counters, gauges and
// sample-retaining histograms with relaxed-atomic hot paths, plus a
// collective aggregation that reduces every rank's registry to
// min/max/sum/mean/p50/p99 summaries on rank 0 for the run report.
//
// Handles returned by the registry are stable for its lifetime, so hot
// call sites resolve a metric once and then touch only the atomic. The
// per-rank registry is reached through the thread-local ObsContext
// (obs::Session installs it); the free helpers below no-op when no
// session is live, which keeps tier-1 runs at one thread-local load per
// site. A separate process-global registry backs counters that predate
// the rank context — util/perf.hpp's payload-bytes-copied counter now
// lives there instead of in its own ad-hoc atomic.
//
// Histograms retain their samples (bounded by `maxSamples`, defaulting
// generous) so percentiles are *exact* on retained data — the same
// nearest-rank definition as util::Percentiles, which test_obs.cpp pins.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mvio::obs {

class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }
  /// Direct handle for pre-resolved hot paths (util/perf.hpp).
  [[nodiscard]] std::atomic<std::uint64_t>& raw() { return v_; }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Sample-retaining histogram: observe() appends under a mutex (cold
/// paths only — per-cell / per-round, never per-record), quantile() is
/// exact nearest-rank over the retained samples.
class Histogram {
 public:
  explicit Histogram(std::size_t maxSamples = 1 << 20) : maxSamples_(maxSamples) {}

  void observe(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    sum_ += v;
    if (samples_.size() < maxSamples_) samples_.push_back(v);
  }

  [[nodiscard]] std::uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  [[nodiscard]] double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }

  [[nodiscard]] std::vector<double> samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
  }

  /// Exact nearest-rank quantile (q in [0,1]) over the retained samples;
  /// 0 when empty. quantile(0.5) of {1..100} is 50, quantile(0.99) is 99.
  [[nodiscard]] double quantile(double q) const;

 private:
  mutable std::mutex mu_;
  std::size_t maxSamples_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  std::vector<double> samples_;
};

/// Nearest-rank quantile over an unsorted sample set (shared with the
/// cross-rank aggregation, which merges samples from every rank first).
[[nodiscard]] double exactQuantile(std::vector<double> samples, double q);

class MetricsRegistry {
 public:
  /// Find-or-create; returned references stay valid for the registry's
  /// lifetime (node-based map + unique_ptr).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, std::vector<double>>> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-global registry for counters that outlive any rank session
/// (payload bytes copied, bench allocation counts).
[[nodiscard]] MetricsRegistry& processMetrics();

// ---- Thread-local helpers (no-ops without an installed session) ---------

inline void addCount(const char* name, std::uint64_t n) {
  MetricsRegistry* m = obsContext().metrics;
  if (m != nullptr) m->counter(name).add(n);
}

inline void setGauge(const char* name, double v) {
  MetricsRegistry* m = obsContext().metrics;
  if (m != nullptr) m->gauge(name).set(v);
}

inline void observe(const char* name, double v) {
  MetricsRegistry* m = obsContext().metrics;
  if (m != nullptr) m->histogram(name).observe(v);
}

[[nodiscard]] inline bool metricsOn() { return obsContext().metrics != nullptr; }

// ---- Cross-rank aggregation ---------------------------------------------

/// One metric reduced across ranks. For counters/gauges the per-rank
/// values are the sample set (count = ranks reporting); for histograms
/// the ranks' retained samples are merged. p50/p99 are exact
/// nearest-rank over that set.
struct MetricSummary {
  std::string name;
  char kind = 'c';  ///< 'c' counter, 'g' gauge, 'h' histogram
  std::uint64_t count = 0;
  double min = 0;
  double max = 0;
  double sum = 0;
  double mean = 0;
  double p50 = 0;
  double p99 = 0;
};

/// Collective over `comm`: every rank contributes its thread-local
/// registry (absent → nothing), rank 0 returns the merged summaries
/// sorted by name (empty vector on other ranks).
std::vector<MetricSummary> aggregateMetrics(mpi::Comm& comm);

/// Same, over an explicit local registry (used by benches that fold the
/// process-global registry in as well).
std::vector<MetricSummary> aggregateMetrics(mpi::Comm& comm, const MetricsRegistry* local);

}  // namespace mvio::obs
