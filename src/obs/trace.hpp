#pragma once
// Flight-recorder span tracer (DESIGN.md §14).
//
// Every rank thread owns a Tracer: a fixed set of single-writer ring
// buffers ("lanes") of begin/end/instant events stamped on the rank's
// sim::Clock *virtual* timeline, so modelled I/O, worker fan-out and the
// round-overlap pipeline render truthfully — an overlapped round shows
// its prep and store-flush spans genuinely concurrent with the exchange
// span on the main lane. Lane layout per rank:
//
//   lane 0                  the rank (main) thread
//   lanes 1..workers        one lane per pool worker
//   lane workers+1 ("prep") deferred parse/projection under round overlap
//   lane workers+2 ("flush") deferred owned-store flush under overlap
//
// Instrumentation reaches the tracer through a thread-local ObsContext
// installed by the MPI runtime (rank id + clock) and by obs::Session
// (tracer + metrics registry), so deep call sites — CellStore, the
// exchange, the checkpoint coordinator — need no plumbed-through handle.
// Everything is zero-cost when no session is installed: the RAII span and
// the free helpers reduce to one thread-local load and a null check, and
// tier-1 runs install nothing. Tracing only ever *reads* the clock, so
// enabling it cannot change a result bit (tests/test_obs.cpp).
//
// At run end writeChromeTrace() gathers every rank's lanes to rank 0,
// which writes one Chrome/Perfetto trace-event JSON (rank → pid,
// lane → tid). Rings keep the *newest* events on overflow and count the
// drops; the writer skips end events whose begin was dropped so the file
// stays well-formed.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/clock.hpp"

namespace mvio::mpi {
class Comm;
}

namespace mvio::obs {

class MetricsRegistry;

struct TraceConfig {
  bool enabled = false;            ///< tier-1 default: recorder off
  std::size_t laneCapacity = 1 << 15;  ///< events retained per lane ring

  [[nodiscard]] static TraceConfig off() { return {}; }
  [[nodiscard]] static TraceConfig on(std::size_t laneCapacity = 1 << 15) {
    return {true, laneCapacity};
  }
};

enum class EventType : std::uint8_t { kBegin = 0, kEnd = 1, kInstant = 2 };

struct TraceEvent {
  const char* name = "";  ///< interned literal (static storage duration)
  double t = 0;           ///< virtual seconds on the rank's sim::Clock
  EventType type = EventType::kInstant;
  std::string detail;     ///< optional payload (log mirrors); empty for spans
};

/// Single-writer ring of the newest `capacity` events. No locks and no
/// atomics: each lane has exactly one writer at a time (the rank thread,
/// or one pool worker), and readers only look after a happens-before
/// edge (pool join / run end).
class TraceLane {
 public:
  explicit TraceLane(std::size_t capacity) : slots_(capacity) {}

  void emit(const char* name, double t, EventType type, std::string detail = {}) {
    // A lane is a timeline: timestamps are clamped monotone so events
    // derived from measured CPU (worker spans whose charge is deferred
    // under round overlap) can never step behind the lane's history.
    if (t < lastT_) t = lastT_;
    lastT_ = t;
    TraceEvent& slot = slots_[static_cast<std::size_t>(next_ % slots_.size())];
    slot.name = name;
    slot.t = t;
    slot.type = type;
    slot.detail = std::move(detail);
    ++next_;
  }

  /// Events ever emitted minus events retained — oldest-first casualties.
  [[nodiscard]] std::uint64_t drops() const {
    return next_ > slots_.size() ? next_ - slots_.size() : 0;
  }

  [[nodiscard]] std::uint64_t emitted() const { return next_; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    const std::uint64_t cap = slots_.size();
    const std::uint64_t first = next_ > cap ? next_ - cap : 0;
    out.reserve(static_cast<std::size_t>(next_ - first));
    for (std::uint64_t i = first; i < next_; ++i) {
      out.push_back(slots_[static_cast<std::size_t>(i % cap)]);
    }
    return out;
  }

 private:
  std::vector<TraceEvent> slots_;
  std::uint64_t next_ = 0;
  double lastT_ = 0;
};

/// One rank's recorder: main + worker + overlap lanes (see file comment).
class Tracer {
 public:
  Tracer(const TraceConfig& cfg, int workerLanes)
      : capacity_(cfg.laneCapacity), workers_(workerLanes) {
    lanes_.reserve(static_cast<std::size_t>(workerLanes) + 3);
    for (int i = 0; i < workerLanes + 3; ++i) lanes_.emplace_back(capacity_);
  }

  [[nodiscard]] int laneCount() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] int workerLanes() const { return workers_; }
  [[nodiscard]] static constexpr int mainLane() { return 0; }
  [[nodiscard]] static constexpr int workerLane(int worker) { return 1 + worker; }
  [[nodiscard]] int prepLane() const { return laneCount() - 2; }
  [[nodiscard]] int flushLane() const { return laneCount() - 1; }

  [[nodiscard]] TraceLane& lane(int i) { return lanes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const TraceLane& lane(int i) const { return lanes_[static_cast<std::size_t>(i)]; }

  [[nodiscard]] std::uint64_t totalDrops() const {
    std::uint64_t n = 0;
    for (const TraceLane& l : lanes_) n += l.drops();
    return n;
  }

 private:
  std::size_t capacity_;
  int workers_;
  std::vector<TraceLane> lanes_;
};

/// Thread-local observability context. The MPI runtime fills worldRank +
/// clock for every rank thread it spawns; obs::Session fills tracer +
/// metrics. Pool workers inherit nothing by default — worker-lane spans
/// are emitted by the rank thread from per-worker CPU accounting
/// (util::PoolTiming::perWorker), which keeps worker hot paths untouched.
struct ObsContext {
  int worldRank = -1;
  const sim::Clock* clock = nullptr;
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  int lane = 0;  ///< lane the RAII span helpers emit into
};

[[nodiscard]] ObsContext& obsContext();

namespace detail {
/// Installed by mpi::Runtime::run around each rank function.
class RankScope {
 public:
  RankScope(int worldRank, const sim::Clock* clock) : saved_(obsContext()) {
    ObsContext& c = obsContext();
    c.worldRank = worldRank;
    c.clock = clock;
    c.tracer = nullptr;
    c.metrics = nullptr;
    c.lane = 0;
  }
  ~RankScope() { obsContext() = saved_; }
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

 private:
  ObsContext saved_;
};
}  // namespace detail

/// RAII recorder session for one rank: owns the Tracer (and a per-rank
/// MetricsRegistry) and installs both into the thread-local context.
/// With cfg.enabled false only the metrics registry is installed — the
/// tracer stays null and every span helper is a no-op.
class Session {
 public:
  Session(const TraceConfig& cfg, int workerLanes);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] MetricsRegistry& metrics() { return *metrics_; }

 private:
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> metrics_;
};

// ---- Emission helpers (no-ops without an enabled session) ---------------

/// Begin/end pair around a scope, stamped from the thread-local clock.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    const ObsContext& c = obsContext();
    if (c.tracer == nullptr || c.clock == nullptr) return;
    tracer_ = c.tracer;
    lane_ = c.lane;
    name_ = name;
    clock_ = c.clock;
    tracer_->lane(lane_).emit(name_, clock_->now(), EventType::kBegin);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->lane(lane_).emit(name_, clock_->now(), EventType::kEnd);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const sim::Clock* clock_ = nullptr;
  const char* name_ = nullptr;
  int lane_ = 0;
};

/// Explicit-interval span on the current thread's lane (phases whose
/// clock charge happens in one advanceBy/advanceTo jump — nothing else
/// may emit on the lane between t0 and t1, or emission order and time
/// order diverge; blocks with nested emissions use traceBegin/traceEnd).
void traceSpanAt(const char* name, double t0, double t1);

/// Eager begin/end at the current virtual time, for block spans that
/// enclose other emissions (migrate around spill reloads, recovery
/// around checkpoint reads, compute around store instants).
void traceBegin(const char* name);
void traceEnd(const char* name);

/// Explicit-interval span on a specific lane (worker / prep / flush).
void traceSpanAtLane(int lane, const char* name, double t0, double t1);

/// Instant event at the current virtual time.
void traceInstant(const char* name, std::string detail = {});

/// Guard for call sites whose detail string is costly to build.
[[nodiscard]] inline bool tracingOn() { return obsContext().tracer != nullptr; }

/// One span per pool worker on the worker lanes: worker w covers
/// [base, base + perWorkerCpu[w]]. Called by the *rank* thread after a
/// pool region, so the lanes stay single-writer.
void traceWorkerSpans(const char* name, double base, const std::vector<double>& perWorkerCpu);

/// Collective: serialize every rank's lanes, gather to rank 0, write one
/// Chrome trace-event JSON to `path` on the host filesystem (the trace is
/// an artifact about the run, not part of the simulated volume). Ranks
/// without a tracer contribute empty lanes. Returns the event count
/// written (rank 0; 0 elsewhere).
std::uint64_t writeChromeTrace(mpi::Comm& comm, const std::string& path);

}  // namespace mvio::obs
