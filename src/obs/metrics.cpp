#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "mpi/runtime.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace mvio::obs {

double exactQuantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank: the ceil(q*N)-th smallest sample (1-based), matching
  // util::Percentiles.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

double Histogram::quantile(double q) const {
  return exactQuantile(samples(), q);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.histograms.emplace_back(name, h->samples());
  return out;
}

MetricsRegistry& processMetrics() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

/// Wire format of one rank's snapshot:
///   u32 counters:   { u32 nameLen + bytes, u64 value }*
///   u32 gauges:     { u32 nameLen + bytes, f64 value }*
///   u32 histograms: { u32 nameLen + bytes, u32 n, f64*n }*
std::string encodeSnapshot(const MetricsRegistry::Snapshot& snap) {
  std::string out;
  const auto putName = [&out](const std::string& name) {
    util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
    util::putBytes(out, name.data(), name.size());
  };
  util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(snap.counters.size()));
  for (const auto& [name, v] : snap.counters) {
    putName(name);
    util::putScalar<std::uint64_t>(out, v);
  }
  util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(snap.gauges.size()));
  for (const auto& [name, v] : snap.gauges) {
    putName(name);
    util::putScalar<double>(out, v);
  }
  util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& [name, samples] : snap.histograms) {
    putName(name);
    util::putScalar<std::uint32_t>(out, static_cast<std::uint32_t>(samples.size()));
    for (const double s : samples) util::putScalar<double>(out, s);
  }
  return out;
}

struct Cursor {
  const char* p;
  const char* end;

  template <typename T>
  T take() {
    MVIO_CHECK(p + sizeof(T) <= end, "metrics decode past end");
    const T v = util::readScalar<T>(p);
    p += sizeof(T);
    return v;
  }

  std::string takeString() {
    const std::uint32_t n = take<std::uint32_t>();
    MVIO_CHECK(p + n <= end, "metrics decode past end");
    std::string s(p, n);
    p += n;
    return s;
  }
};

MetricSummary summarize(const std::string& name, char kind, std::vector<double> values) {
  MetricSummary s;
  s.name = name;
  s.kind = kind;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  for (const double v : values) s.sum += v;
  s.mean = s.sum / static_cast<double>(values.size());
  s.p50 = exactQuantile(values, 0.5);
  s.p99 = exactQuantile(std::move(values), 0.99);
  return s;
}

}  // namespace

std::vector<MetricSummary> aggregateMetrics(mpi::Comm& comm) {
  return aggregateMetrics(comm, obsContext().metrics);
}

std::vector<MetricSummary> aggregateMetrics(mpi::Comm& comm, const MetricsRegistry* local) {
  const std::string mine =
      encodeSnapshot(local != nullptr ? local->snapshot() : MetricsRegistry::Snapshot{});
  const int p = comm.size();
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(p), 0);
  const std::uint64_t mySize = mine.size();
  comm.gather(&mySize, 1, mpi::Datatype::uint64(), sizes.data(), 0);
  std::vector<int> counts(static_cast<std::size_t>(p), 0);
  std::vector<int> displs(static_cast<std::size_t>(p), 0);
  std::uint64_t total = 0;
  for (int rk = 0; rk < p; ++rk) {
    displs[static_cast<std::size_t>(rk)] = static_cast<int>(total);
    counts[static_cast<std::size_t>(rk)] = static_cast<int>(sizes[static_cast<std::size_t>(rk)]);
    total += sizes[static_cast<std::size_t>(rk)];
  }
  std::string all(static_cast<std::size_t>(total), '\0');
  comm.gatherv(mine.data(), static_cast<int>(mine.size()), mpi::Datatype::byte(), all.data(),
               counts.data(), displs.data(), 0);
  if (comm.rank() != 0) return {};

  // Merge by (kind, name): counters and gauges collect one value per
  // rank, histograms concatenate every rank's retained samples.
  std::map<std::pair<char, std::string>, std::vector<double>> merged;
  for (int rk = 0; rk < p; ++rk) {
    Cursor cur{all.data() + displs[static_cast<std::size_t>(rk)],
               all.data() + displs[static_cast<std::size_t>(rk)] +
                   counts[static_cast<std::size_t>(rk)]};
    if (cur.p == cur.end) continue;
    const auto nCounters = cur.take<std::uint32_t>();
    for (std::uint32_t i = 0; i < nCounters; ++i) {
      const std::string name = cur.takeString();
      merged[{'c', name}].push_back(static_cast<double>(cur.take<std::uint64_t>()));
    }
    const auto nGauges = cur.take<std::uint32_t>();
    for (std::uint32_t i = 0; i < nGauges; ++i) {
      const std::string name = cur.takeString();
      merged[{'g', name}].push_back(cur.take<double>());
    }
    const auto nHists = cur.take<std::uint32_t>();
    for (std::uint32_t i = 0; i < nHists; ++i) {
      const std::string name = cur.takeString();
      const auto n = cur.take<std::uint32_t>();
      auto& bucket = merged[{'h', name}];
      for (std::uint32_t k = 0; k < n; ++k) bucket.push_back(cur.take<double>());
    }
  }
  std::vector<MetricSummary> out;
  out.reserve(merged.size());
  for (auto& [key, values] : merged) {
    out.push_back(summarize(key.second, key.first, std::move(values)));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSummary& a, const MetricSummary& b) { return a.name < b.name; });
  return out;
}

}  // namespace mvio::obs
