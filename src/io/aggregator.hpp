#pragma once
// Collective-buffering aggregator selection (ROMIO's cb_nodes logic).
//
// On Lustre, ROMIO picks the number of I/O aggregators ("readers") from
// the node count and the file's stripe count; the paper's Figure 11 shows
// the performance cliff this causes when the node count is neither a
// multiple nor a divisor of the stripe count (24/48/72 nodes vs 64 OSTs).
// The rule implemented here follows the paper's description:
//   * stripeCount % nodes == 0 or nodes % stripeCount == 0 → nodes readers
//   * otherwise → the largest divisor of stripeCount that is <= nodes
// On filesystems without user striping (GPFS) ROMIO defaults to one
// aggregator per compute node.

#include <vector>

#include "mpi/runtime.hpp"

namespace mvio::io {

/// Number of aggregators for `nodes` compute nodes on a file striped over
/// `stripeCount` targets. `cbNodesHint` > 0 forces a value (MPI_Info
/// cb_nodes); `stripedFs` selects the Lustre rule vs the GPFS default.
int aggregatorCount(int nodes, int stripeCount, bool stripedFs, int cbNodesHint);

/// Pick the aggregator ranks within `comm`: one rank per chosen node,
/// nodes spread evenly across the communicator. Returned list is sorted by
/// rank and has exactly min(aggregators, #distinct nodes in comm) entries.
std::vector<int> chooseAggregatorRanks(mpi::Comm& comm, int aggregators);

}  // namespace mvio::io
