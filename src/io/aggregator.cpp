#include "io/aggregator.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace mvio::io {

int aggregatorCount(int nodes, int stripeCount, bool stripedFs, int cbNodesHint) {
  MVIO_CHECK(nodes >= 1, "need at least one node");
  if (cbNodesHint > 0) return std::min(cbNodesHint, nodes);
  if (!stripedFs) return nodes;  // ROMIO default on GPFS: one aggregator per node
  MVIO_CHECK(stripeCount >= 1, "need at least one stripe");
  if (stripeCount % nodes == 0 || nodes % stripeCount == 0) return nodes;
  // Largest divisor of stripeCount that is <= nodes.
  int best = 1;
  for (int d = 1; d <= stripeCount; ++d) {
    if (stripeCount % d == 0 && d <= nodes) best = std::max(best, d);
  }
  return best;
}

std::vector<int> chooseAggregatorRanks(mpi::Comm& comm, int aggregators) {
  MVIO_CHECK(aggregators >= 1, "need at least one aggregator");
  // First rank on each distinct node, in node order.
  std::map<int, int> firstRankOfNode;
  for (int r = 0; r < comm.size(); ++r) {
    const int node = comm.nodeOfRank(r);
    if (!firstRankOfNode.contains(node)) firstRankOfNode[node] = r;
  }
  std::vector<int> nodeLeaders;
  nodeLeaders.reserve(firstRankOfNode.size());
  for (const auto& [node, rank] : firstRankOfNode) nodeLeaders.push_back(rank);

  const int n = static_cast<int>(nodeLeaders.size());
  const int a = std::min(aggregators, n);
  // Spread the A aggregators evenly over the N nodes.
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(a));
  for (int i = 0; i < a; ++i) {
    out.push_back(nodeLeaders[static_cast<std::size_t>(static_cast<long>(i) * n / a)]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace mvio::io
