#pragma once
// MPI-IO file views. A view = (displacement, etype, filetype) exposes a
// possibly non-contiguous window of the file as a linear stream: the
// filetype is tiled from `disp` onward and only its typemap blocks are
// visible. ViewMap translates ranges of that stream into absolute
// (offset, length) runs in the file — the unit both the independent
// (data-sieving) and collective (two-phase) read paths work with.

#include <cstdint>
#include <vector>

#include "mpi/datatype.hpp"

namespace mvio::io {

/// One contiguous piece of the file touched by an access.
struct Run {
  std::uint64_t offset = 0;  ///< absolute file offset, bytes
  std::uint64_t length = 0;  ///< bytes
};

class ViewMap {
 public:
  /// Default view: byte-contiguous from offset 0 (MPI's default).
  ViewMap();

  ViewMap(std::uint64_t disp, mpi::Datatype etype, mpi::Datatype filetype);

  /// Bytes visible per filetype tile.
  [[nodiscard]] std::uint64_t tileSize() const { return tileSize_; }
  [[nodiscard]] const mpi::Datatype& etype() const { return etype_; }
  [[nodiscard]] const mpi::Datatype& filetype() const { return filetype_; }
  [[nodiscard]] bool isContiguousByteView() const { return contiguousBytes_; }

  /// Append absolute-file runs covering view-stream bytes [pos, pos+len);
  /// adjacent runs are coalesced.
  void runs(std::uint64_t pos, std::uint64_t len, std::vector<Run>& out) const;

  /// Convenience: materialize the run list.
  [[nodiscard]] std::vector<Run> runs(std::uint64_t pos, std::uint64_t len) const;

 private:
  std::uint64_t disp_;
  mpi::Datatype etype_;
  mpi::Datatype filetype_;
  std::uint64_t tileSize_;    // filetype.size()
  std::uint64_t tileExtent_;  // filetype.extent()
  bool contiguousBytes_;
};

}  // namespace mvio::io
