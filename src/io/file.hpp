#pragma once
// MPI-IO-shaped file access over a simulated parallel filesystem.
//
// A File is opened collectively by every rank of a communicator against a
// pfs::Volume, then read/written through the three access levels the
// paper benchmarks (Table 1):
//
//   Level 0  contiguous + independent  -> readAtBytes / readAt
//   Level 1  contiguous + collective   -> readAtAllBytes / readAtAll
//   Level 3  non-contiguous + collective -> setView + readAtAll
//   (level 2, non-contiguous + independent, exists too: setView + readAt,
//    implemented with ROMIO-style data sieving)
//
// Collective reads/writes run genuine two-phase I/O: aggregator ranks are
// selected with ROMIO's Lustre rule (io/aggregator.hpp), file domains are
// stripe-aligned partitions of the accessed range, aggregators move data
// in cb_buffer_size cycles, and payloads are redistributed with real
// alltoallv calls. The ROMIO 2 GB single-operation limit is enforced, as
// the paper's partitioners must work around it.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/aggregator.hpp"
#include "io/view.hpp"
#include "mpi/runtime.hpp"
#include "pfs/volume.hpp"

namespace mvio::io {

/// ROMIO's single-operation ceiling (int count of bytes).
inline constexpr std::uint64_t kRomioMaxBytes = (1ull << 31) - 1;

/// MPI_Info-style tuning knobs, plus the MPI-library CPU cost model for
/// request-list processing and staging copies (the overheads that make
/// fine-grained non-contiguous access slow in ROMIO). Charged
/// deterministically so results are reproducible.
struct Hints {
  int cbNodes = 0;                            ///< forced aggregator count; 0 = ROMIO rule
  std::uint64_t cbBufferSize = 16ull << 20;   ///< two-phase cycle buffer per aggregator
  std::uint64_t sieveBufferSize = 4ull << 20; ///< data-sieving buffer for independent NC access
  double cpuPerPieceSeconds = 1.0e-6;         ///< per offset-length pair processed
  double cpuBytesPerSecond = 6.0e9;           ///< staging copy rate (pack/unpack/assemble)
};

/// I/O statistics for tests and benches (per File handle, per rank).
struct IoCounters {
  std::uint64_t modelRequests = 0;  ///< priced requests issued to the storage model
  std::uint64_t bytesMoved = 0;     ///< bytes through the storage model
};

class File {
 public:
  /// Collective open; every rank of `comm` must call with the same name.
  static File open(mpi::Comm& comm, pfs::Volume& volume, const std::string& name, Hints hints = {});

  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] const pfs::StripeSettings& stripe() const;
  [[nodiscard]] const Hints& hints() const { return hints_; }
  [[nodiscard]] const std::vector<int>& aggregatorRanks() const { return aggregators_; }
  [[nodiscard]] const IoCounters& counters() const { return counters_; }

  /// MPI_File_set_view (local operation here; callers keep views consistent
  /// across ranks for collective calls, as MPI requires).
  void setView(std::uint64_t disp, const mpi::Datatype& etype, const mpi::Datatype& filetype);
  [[nodiscard]] const ViewMap& view() const { return view_; }

  // ---- Byte-level contiguous access (ignores the view) -------------------
  /// Level 0: independent read of up to `n` bytes at absolute `offset`.
  /// Returns bytes read (clipped at end of file).
  std::size_t readAtBytes(std::uint64_t offset, void* buf, std::size_t n);
  /// Level 1: collective variant; all ranks must call (possibly with n=0).
  std::size_t readAtAllBytes(std::uint64_t offset, void* buf, std::size_t n);
  /// Independent byte write.
  std::size_t writeAtBytes(std::uint64_t offset, const void* buf, std::size_t n);

  // ---- Typed, view-relative access (offset counted in etypes) ------------
  /// Independent read of `count` memType elements; uses data sieving when
  /// the view is non-contiguous. Returns elements read.
  int readAt(std::uint64_t offsetEtypes, void* buf, int count, const mpi::Datatype& memType);
  /// Collective two-phase read.
  int readAtAll(std::uint64_t offsetEtypes, void* buf, int count, const mpi::Datatype& memType);
  /// Independent write (per-run writes; no sieving).
  int writeAt(std::uint64_t offsetEtypes, const void* buf, int count, const mpi::Datatype& memType);
  /// Collective two-phase write.
  int writeAtAll(std::uint64_t offsetEtypes, const void* buf, int count, const mpi::Datatype& memType);

 private:
  File(mpi::Comm& comm, pfs::Volume& volume, std::shared_ptr<pfs::FileObject> object, Hints hints,
       std::vector<int> aggregators);

  /// Two-phase collective transfer; every rank calls with its run list.
  /// Reads fill `payload` (assembled in run order); writes consume it.
  void collectiveTransfer(bool isWrite, const std::vector<Run>& myRuns, char* payload);

  /// Independent data-sieving read into `payload` (run order).
  void sieveRead(const std::vector<Run>& runs, char* payload);

  [[nodiscard]] std::vector<Run> typedRuns(std::uint64_t offsetEtypes, int count,
                                           const mpi::Datatype& memType) const;

  mpi::Comm* comm_;
  pfs::Volume* volume_;
  std::shared_ptr<pfs::FileObject> object_;
  Hints hints_;
  std::vector<int> aggregators_;
  ViewMap view_;
  IoCounters counters_;
};

}  // namespace mvio::io
