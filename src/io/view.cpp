#include "io/view.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mvio::io {

ViewMap::ViewMap() : ViewMap(0, mpi::Datatype::byte(), mpi::Datatype::byte()) {}

ViewMap::ViewMap(std::uint64_t disp, mpi::Datatype etype, mpi::Datatype filetype)
    : disp_(disp), etype_(std::move(etype)), filetype_(std::move(filetype)) {
  tileSize_ = filetype_.size();
  tileExtent_ = filetype_.extent();
  MVIO_CHECK(tileSize_ > 0, "filetype must have nonzero size");
  MVIO_CHECK(tileExtent_ >= tileSize_, "filetype extent must cover its payload");
  MVIO_CHECK(etype_.size() > 0, "etype must have nonzero size");
  MVIO_CHECK(tileSize_ % etype_.size() == 0, "filetype size must be a multiple of etype size");
  for (const auto& b : filetype_.blocks()) {
    MVIO_CHECK(b.offset >= 0, "file views require non-negative block offsets");
  }
  contiguousBytes_ = disp_ == 0 && filetype_.isContiguous();
}

void ViewMap::runs(std::uint64_t pos, std::uint64_t len, std::vector<Run>& out) const {
  if (len == 0) return;
  if (contiguousBytes_) {
    if (!out.empty() && out.back().offset + out.back().length == pos) {
      out.back().length += len;
    } else {
      out.push_back({pos, len});
    }
    return;
  }

  auto emit = [&out](std::uint64_t off, std::uint64_t n) {
    if (n == 0) return;
    if (!out.empty() && out.back().offset + out.back().length == off) {
      out.back().length += n;
    } else {
      out.push_back({off, n});
    }
  };

  const auto& blocks = filetype_.blocks();
  std::uint64_t tile = pos / tileSize_;
  std::uint64_t inTile = pos % tileSize_;  // position within the tile's payload
  std::uint64_t remaining = len;

  while (remaining > 0) {
    const std::uint64_t tileBase = disp_ + tile * tileExtent_;
    std::uint64_t skipped = 0;  // payload bytes of this tile already passed
    for (const auto& b : blocks) {
      if (remaining == 0) break;
      if (inTile >= skipped + b.length) {
        skipped += b.length;
        continue;
      }
      const std::uint64_t startInBlock = inTile - skipped;
      const std::uint64_t take = std::min<std::uint64_t>(b.length - startInBlock, remaining);
      emit(tileBase + static_cast<std::uint64_t>(b.offset) + startInBlock, take);
      inTile += take;
      remaining -= take;
      skipped += b.length;
    }
    tile += 1;
    inTile = 0;
  }
}

std::vector<Run> ViewMap::runs(std::uint64_t pos, std::uint64_t len) const {
  std::vector<Run> out;
  runs(pos, len, out);
  return out;
}

}  // namespace mvio::io
