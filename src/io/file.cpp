#include "io/file.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace mvio::io {

namespace {

/// Run metadata element for the two-phase request exchange.
const mpi::Datatype& runDatatype() {
  static const mpi::Datatype t = mpi::Datatype::contiguous(2, mpi::Datatype::uint64());
  return t;
}

}  // namespace

File File::open(mpi::Comm& comm, pfs::Volume& volume, const std::string& name, Hints hints) {
  auto object = volume.lookup(name);

  // Count distinct compute nodes in the communicator.
  std::set<int> nodes;
  for (int r = 0; r < comm.size(); ++r) nodes.insert(comm.nodeOfRank(r));
  const int aggCount = aggregatorCount(static_cast<int>(nodes.size()), object->stripe.stripeCount,
                                       volume.model().supportsStriping(), hints.cbNodes);
  std::vector<int> aggregators = chooseAggregatorRanks(comm, aggCount);

  // Collective semantics: everyone synchronises on open.
  comm.barrier();
  return File(comm, volume, std::move(object), hints, std::move(aggregators));
}

File::File(mpi::Comm& comm, pfs::Volume& volume, std::shared_ptr<pfs::FileObject> object, Hints hints,
           std::vector<int> aggregators)
    : comm_(&comm),
      volume_(&volume),
      object_(std::move(object)),
      hints_(hints),
      aggregators_(std::move(aggregators)) {}

std::uint64_t File::size() const { return object_->data->size(); }
const pfs::StripeSettings& File::stripe() const { return object_->stripe; }

void File::setView(std::uint64_t disp, const mpi::Datatype& etype, const mpi::Datatype& filetype) {
  view_ = ViewMap(disp, etype, filetype);
}

// ---- Independent byte access ----------------------------------------------

std::size_t File::readAtBytes(std::uint64_t offset, void* buf, std::size_t n) {
  MVIO_CHECK(n <= kRomioMaxBytes, "ROMIO limit: cannot read more than 2 GB in a single operation");
  const std::uint64_t fileSize = size();
  if (offset >= fileSize || n == 0) return 0;
  const auto m = static_cast<std::size_t>(std::min<std::uint64_t>(n, fileSize - offset));
  object_->data->read(offset, static_cast<char*>(buf), m);
  const double done =
      volume_->model().read(comm_->nodeId(), object_->stripe, offset, m, comm_->clock().now());
  comm_->clock().advanceTo(done);
  counters_.modelRequests += 1;
  counters_.bytesMoved += m;
  return m;
}

std::size_t File::writeAtBytes(std::uint64_t offset, const void* buf, std::size_t n) {
  MVIO_CHECK(n <= kRomioMaxBytes, "ROMIO limit: cannot write more than 2 GB in a single operation");
  if (n == 0) return 0;
  object_->data->write(offset, static_cast<const char*>(buf), n);
  const double done =
      volume_->model().write(comm_->nodeId(), object_->stripe, offset, n, comm_->clock().now());
  comm_->clock().advanceTo(done);
  counters_.modelRequests += 1;
  counters_.bytesMoved += n;
  return n;
}

std::size_t File::readAtAllBytes(std::uint64_t offset, void* buf, std::size_t n) {
  MVIO_CHECK(n <= kRomioMaxBytes, "ROMIO limit: cannot read more than 2 GB in a single operation");
  const std::uint64_t fileSize = size();
  std::size_t m = 0;
  if (offset < fileSize && n > 0) m = static_cast<std::size_t>(std::min<std::uint64_t>(n, fileSize - offset));
  std::vector<Run> runs;
  if (m > 0) runs.push_back({offset, m});
  collectiveTransfer(false, runs, static_cast<char*>(buf));
  return m;
}

// ---- Typed access -----------------------------------------------------------

std::vector<Run> File::typedRuns(std::uint64_t offsetEtypes, int count,
                                 const mpi::Datatype& memType) const {
  MVIO_CHECK(count >= 0, "negative element count");
  const std::uint64_t payloadBytes = memType.size() * static_cast<std::uint64_t>(count);
  MVIO_CHECK(payloadBytes <= kRomioMaxBytes, "ROMIO limit: single operation exceeds 2 GB");
  std::vector<Run> runs = view_.runs(offsetEtypes * view_.etype().size(), payloadBytes);
  const std::uint64_t fileSize = size();
  for (const auto& r : runs) {
    MVIO_CHECK(r.offset + r.length <= fileSize, "view access reaches past end of file");
  }
  return runs;
}

void File::sieveRead(const std::vector<Run>& runs, char* payload) {
  if (runs.empty()) return;
  auto& model = volume_->model();
  auto& clock = comm_->clock();
  const int node = comm_->nodeId();

  // Fast path: one contiguous run needs no sieving.
  if (runs.size() == 1) {
    object_->data->read(runs[0].offset, payload, runs[0].length);
    clock.advanceTo(model.read(node, object_->stripe, runs[0].offset, runs[0].length, clock.now()));
    counters_.modelRequests += 1;
    counters_.bytesMoved += runs[0].length;
    return;
  }

  // Data sieving: read the whole hull [lo, hi) in buffer-sized windows and
  // pick out the requested pieces — ROMIO's strategy for independent
  // non-contiguous access (and the reason it reads "hole" bytes too).
  // Library CPU (piece processing + staging copies) is charged from the
  // hints' cost model.
  clock.advanceBy(static_cast<double>(runs.size()) * hints_.cpuPerPieceSeconds);
  const std::uint64_t lo = runs.front().offset;
  const std::uint64_t hi = runs.back().offset + runs.back().length;
  std::vector<char> window(static_cast<std::size_t>(std::min<std::uint64_t>(hints_.sieveBufferSize, hi - lo)));

  // Per-run payload prefix offsets.
  std::vector<std::uint64_t> prefix(runs.size() + 1, 0);
  for (std::size_t i = 0; i < runs.size(); ++i) prefix[i + 1] = prefix[i] + runs[i].length;

  std::size_t cursor = 0;  // current run index
  for (std::uint64_t wLo = lo; wLo < hi; wLo += window.size()) {
    const std::uint64_t wHi = std::min<std::uint64_t>(wLo + window.size(), hi);
    object_->data->read(wLo, window.data(), wHi - wLo);
    clock.advanceTo(model.read(node, object_->stripe, wLo, wHi - wLo, clock.now()));
    clock.advanceBy(static_cast<double>(wHi - wLo) / hints_.cpuBytesPerSecond);
    counters_.modelRequests += 1;
    counters_.bytesMoved += wHi - wLo;

    while (cursor < runs.size() && runs[cursor].offset < wHi) {
      const Run& r = runs[cursor];
      const std::uint64_t a = std::max(r.offset, wLo);
      const std::uint64_t b = std::min(r.offset + r.length, wHi);
      if (a < b) {
        std::memcpy(payload + prefix[cursor] + (a - r.offset), window.data() + (a - wLo), b - a);
      }
      if (r.offset + r.length <= wHi) {
        ++cursor;
      } else {
        break;  // run continues into the next window
      }
    }
  }
}

int File::readAt(std::uint64_t offsetEtypes, void* buf, int count, const mpi::Datatype& memType) {
  const std::vector<Run> runs = typedRuns(offsetEtypes, count, memType);
  const std::uint64_t payloadBytes = memType.size() * static_cast<std::uint64_t>(count);
  std::vector<char> payload(static_cast<std::size_t>(payloadBytes));
  sieveRead(runs, payload.data());
  if (count > 0) memType.unpack(payload.data(), payload.size(), buf, count);
  return count;
}

int File::writeAt(std::uint64_t offsetEtypes, const void* buf, int count, const mpi::Datatype& memType) {
  const std::vector<Run> runs = typedRuns(offsetEtypes, count, memType);
  std::string payload;
  if (count > 0) memType.pack(buf, count, payload);
  auto& model = volume_->model();
  auto& clock = comm_->clock();
  const int node = comm_->nodeId();
  std::uint64_t pos = 0;
  for (const auto& r : runs) {
    object_->data->write(r.offset, payload.data() + pos, r.length);
    clock.advanceTo(model.write(node, object_->stripe, r.offset, r.length, clock.now()));
    counters_.modelRequests += 1;
    counters_.bytesMoved += r.length;
    pos += r.length;
  }
  return count;
}

int File::readAtAll(std::uint64_t offsetEtypes, void* buf, int count, const mpi::Datatype& memType) {
  const std::vector<Run> runs = typedRuns(offsetEtypes, count, memType);
  const std::uint64_t payloadBytes = memType.size() * static_cast<std::uint64_t>(count);
  std::vector<char> payload(static_cast<std::size_t>(payloadBytes));
  collectiveTransfer(false, runs, payload.data());
  if (count > 0) memType.unpack(payload.data(), payload.size(), buf, count);
  return count;
}

int File::writeAtAll(std::uint64_t offsetEtypes, const void* buf, int count, const mpi::Datatype& memType) {
  const std::vector<Run> runs = typedRuns(offsetEtypes, count, memType);
  std::string payload;
  if (count > 0) memType.pack(buf, count, payload);
  collectiveTransfer(true, runs, payload.data());
  return count;
}

// ---- Two-phase collective transfer ------------------------------------------

void File::collectiveTransfer(bool isWrite, const std::vector<Run>& myRuns, char* payload) {
  mpi::Comm& comm = *comm_;
  const int p = comm.size();
  const int a = static_cast<int>(aggregators_.size());
  const std::uint64_t stripeSize = object_->stripe.stripeSize;

  // Local hull.
  std::uint64_t lo = ~0ull, hi = 0, myBytes = 0;
  for (const auto& r : myRuns) {
    MVIO_CHECK(r.offset + r.length <= size(), "collective access reaches past end of file");
    lo = std::min(lo, r.offset);
    hi = std::max(hi, r.offset + r.length);
    myBytes += r.length;
  }
  MVIO_CHECK(myBytes <= kRomioMaxBytes, "ROMIO limit: single collective operation exceeds 2 GB per rank");

  // Round 1: hull exchange (the "extra" metadata round of collective I/O).
  std::vector<std::uint64_t> hulls(static_cast<std::size_t>(2 * p));
  const std::uint64_t mine[2] = {lo, hi};
  comm.allgather(mine, 2, mpi::Datatype::uint64(), hulls.data());
  std::uint64_t gLo = ~0ull, gHi = 0;
  for (int i = 0; i < p; ++i) {
    gLo = std::min(gLo, hulls[static_cast<std::size_t>(2 * i)]);
    gHi = std::max(gHi, hulls[static_cast<std::size_t>(2 * i + 1)]);
  }
  if (gHi <= gLo || gLo == ~0ull) {
    comm.barrier();  // nobody moves data; stay collective
    return;
  }

  // Stripe-aligned file domains over [gLo, gHi).
  auto domainStart = [&](int d) -> std::uint64_t {
    if (d <= 0) return gLo;
    if (d >= a) return gHi;
    const std::uint64_t raw = gLo + (gHi - gLo) * static_cast<std::uint64_t>(d) / static_cast<std::uint64_t>(a);
    const std::uint64_t aligned = (raw + stripeSize - 1) / stripeSize * stripeSize;
    return std::clamp(aligned, gLo, gHi);
  };

  // Split my runs across aggregator domains. Runs are offset-ascending, so
  // pieces for domain d form a contiguous slice of the payload.
  std::vector<std::vector<Run>> requests(static_cast<std::size_t>(a));
  std::vector<std::uint64_t> bytesPerDomain(static_cast<std::size_t>(a), 0);
  {
    int d = 0;  // runs are ascending, so the domain index only moves forward
    for (const auto& r : myRuns) {
      std::uint64_t cur = r.offset;
      const std::uint64_t end = r.offset + r.length;
      while (cur < end) {
        while (d + 1 < a && domainStart(d + 1) <= cur) ++d;
        const std::uint64_t dEnd = domainStart(d + 1);  // domainStart(a) == gHi > cur
        const std::uint64_t pieceEnd = std::min(end, dEnd);
        requests[static_cast<std::size_t>(d)].push_back({cur, pieceEnd - cur});
        bytesPerDomain[static_cast<std::size_t>(d)] += pieceEnd - cur;
        cur = pieceEnd;
      }
    }
  }

  // Round 2: request metadata to aggregators (alltoall counts + alltoallv runs).
  std::vector<int> sendCounts(static_cast<std::size_t>(p), 0);
  for (int d = 0; d < a; ++d) {
    sendCounts[static_cast<std::size_t>(aggregators_[static_cast<std::size_t>(d)])] =
        static_cast<int>(requests[static_cast<std::size_t>(d)].size());
  }
  std::vector<int> recvCounts(static_cast<std::size_t>(p), 0);
  comm.alltoall(sendCounts.data(), 1, mpi::Datatype::int32(), recvCounts.data());

  std::vector<int> sendDispls(static_cast<std::size_t>(p), 0);
  std::vector<int> recvDispls(static_cast<std::size_t>(p), 0);
  int sendTotal = 0, recvTotal = 0;
  for (int i = 0; i < p; ++i) {
    sendDispls[static_cast<std::size_t>(i)] = sendTotal;
    recvDispls[static_cast<std::size_t>(i)] = recvTotal;
    sendTotal += sendCounts[static_cast<std::size_t>(i)];
    recvTotal += recvCounts[static_cast<std::size_t>(i)];
  }
  std::vector<Run> sendRuns(static_cast<std::size_t>(sendTotal));
  {
    for (int d = 0; d < a; ++d) {
      const int dst = aggregators_[static_cast<std::size_t>(d)];
      std::copy(requests[static_cast<std::size_t>(d)].begin(), requests[static_cast<std::size_t>(d)].end(),
                sendRuns.begin() + sendDispls[static_cast<std::size_t>(dst)]);
    }
  }
  std::vector<Run> recvRuns(static_cast<std::size_t>(recvTotal));
  static_assert(sizeof(Run) == 16, "Run must pack as 2x uint64");
  // Request-list processing cost (ROMIO flattening/offset-length handling).
  comm.clock().advanceBy(static_cast<double>(sendTotal) * hints_.cpuPerPieceSeconds);
  comm.alltoallv(sendRuns.data(), sendCounts.data(), sendDispls.data(), recvRuns.data(), recvCounts.data(),
                 recvDispls.data(), runDatatype());

  // Aggregator-side service buffers, one per source rank.
  std::vector<std::uint64_t> srcBytes(static_cast<std::size_t>(p), 0);
  for (int src = 0; src < p; ++src) {
    for (int k = 0; k < recvCounts[static_cast<std::size_t>(src)]; ++k) {
      srcBytes[static_cast<std::size_t>(src)] +=
          recvRuns[static_cast<std::size_t>(recvDispls[static_cast<std::size_t>(src)] + k)].length;
    }
  }
  std::vector<std::string> service(static_cast<std::size_t>(p));
  for (int src = 0; src < p; ++src) {
    service[static_cast<std::size_t>(src)].resize(srcBytes[static_cast<std::size_t>(src)]);
  }

  // ---- WRITE: payload travels requester -> aggregator first. -------------
  if (isWrite) {
    std::vector<int> byteSend(static_cast<std::size_t>(p), 0);
    std::vector<int> byteSendDispls(static_cast<std::size_t>(p), 0);
    std::vector<int> byteRecv(static_cast<std::size_t>(p), 0);
    std::vector<int> byteRecvDispls(static_cast<std::size_t>(p), 0);
    std::uint64_t off = 0;
    for (int d = 0; d < a; ++d) {
      const int dst = aggregators_[static_cast<std::size_t>(d)];
      byteSend[static_cast<std::size_t>(dst)] = static_cast<int>(bytesPerDomain[static_cast<std::size_t>(d)]);
      byteSendDispls[static_cast<std::size_t>(dst)] = static_cast<int>(off);
      off += bytesPerDomain[static_cast<std::size_t>(d)];
    }
    int pos = 0;
    for (int i = 0; i < p; ++i) {
      byteRecv[static_cast<std::size_t>(i)] = static_cast<int>(srcBytes[static_cast<std::size_t>(i)]);
      byteRecvDispls[static_cast<std::size_t>(i)] = pos;
      pos += byteRecv[static_cast<std::size_t>(i)];
    }
    std::vector<char> inbound(static_cast<std::size_t>(pos));
    comm.alltoallv(payload, byteSend.data(), byteSendDispls.data(), inbound.data(), byteRecv.data(),
                   byteRecvDispls.data(), mpi::Datatype::byte());
    for (int src = 0; src < p; ++src) {
      util::copyBytes(service[static_cast<std::size_t>(src)].data(),
                      inbound.data() + byteRecvDispls[static_cast<std::size_t>(src)],
                      srcBytes[static_cast<std::size_t>(src)]);
    }
  }

  // ---- Aggregator I/O in cb_buffer_size cycles. ---------------------------
  if (recvTotal > 0) {
    // Aggregator-side piece processing cost.
    comm.clock().advanceBy(static_cast<double>(recvTotal) * hints_.cpuPerPieceSeconds);
    std::uint64_t needLo = ~0ull, needHi = 0;
    for (const auto& r : recvRuns) {
      needLo = std::min(needLo, r.offset);
      needHi = std::max(needHi, r.offset + r.length);
    }
    if (needHi > needLo && needLo != ~0ull) {
      auto& model = volume_->model();
      auto& clock = comm_->clock();
      const int node = comm_->nodeId();
      const std::uint64_t cycleBytes = std::max<std::uint64_t>(hints_.cbBufferSize, 1);
      std::vector<char> window(static_cast<std::size_t>(std::min<std::uint64_t>(cycleBytes, needHi - needLo)));
      // Per-source cursors over their (ascending) run lists, plus payload prefix.
      std::vector<int> cursor(static_cast<std::size_t>(p), 0);
      std::vector<std::vector<std::uint64_t>> prefix(static_cast<std::size_t>(p));
      for (int src = 0; src < p; ++src) {
        const int n = recvCounts[static_cast<std::size_t>(src)];
        prefix[static_cast<std::size_t>(src)].assign(static_cast<std::size_t>(n) + 1, 0);
        for (int k = 0; k < n; ++k) {
          prefix[static_cast<std::size_t>(src)][static_cast<std::size_t>(k) + 1] =
              prefix[static_cast<std::size_t>(src)][static_cast<std::size_t>(k)] +
              recvRuns[static_cast<std::size_t>(recvDispls[static_cast<std::size_t>(src)] + k)].length;
        }
      }

      for (std::uint64_t wLo = needLo; wLo < needHi; wLo += window.size()) {
        const std::uint64_t wHi = std::min<std::uint64_t>(wLo + window.size(), needHi);
        // Read the cycle (for writes this is the read half of read-modify-
        // write, which ROMIO performs when requests may not cover the cycle).
        object_->data->read(wLo, window.data(), wHi - wLo);
        clock.advanceTo(model.read(node, object_->stripe, wLo, wHi - wLo, clock.now()));
        clock.advanceBy(static_cast<double>(wHi - wLo) / hints_.cpuBytesPerSecond);
        counters_.modelRequests += 1;
        counters_.bytesMoved += wHi - wLo;

        for (int src = 0; src < p; ++src) {
          int& ci = cursor[static_cast<std::size_t>(src)];
          const int n = recvCounts[static_cast<std::size_t>(src)];
          while (ci < n) {
            const Run& r = recvRuns[static_cast<std::size_t>(recvDispls[static_cast<std::size_t>(src)] + ci)];
            if (r.offset >= wHi) break;
            const std::uint64_t s = std::max(r.offset, wLo);
            const std::uint64_t e = std::min(r.offset + r.length, wHi);
            if (s < e) {
              char* svc = service[static_cast<std::size_t>(src)].data() +
                          prefix[static_cast<std::size_t>(src)][static_cast<std::size_t>(ci)] +
                          (s - r.offset);
              if (isWrite) {
                std::memcpy(window.data() + (s - wLo), svc, e - s);
              } else {
                std::memcpy(svc, window.data() + (s - wLo), e - s);
              }
            }
            if (r.offset + r.length <= wHi) {
              ++ci;
            } else {
              break;
            }
          }
        }

        if (isWrite) {
          object_->data->write(wLo, window.data(), wHi - wLo);
          clock.advanceTo(model.write(node, object_->stripe, wLo, wHi - wLo, clock.now()));
          counters_.modelRequests += 1;
          counters_.bytesMoved += wHi - wLo;
        }
      }
    }
  }

  // ---- READ: payload travels aggregator -> requester. ---------------------
  if (!isWrite) {
    std::vector<int> byteSend(static_cast<std::size_t>(p), 0);
    std::vector<int> byteSendDispls(static_cast<std::size_t>(p), 0);
    std::vector<int> byteRecv(static_cast<std::size_t>(p), 0);
    std::vector<int> byteRecvDispls(static_cast<std::size_t>(p), 0);
    int pos = 0;
    std::vector<char> outbound;
    for (int i = 0; i < p; ++i) {
      byteSend[static_cast<std::size_t>(i)] = static_cast<int>(srcBytes[static_cast<std::size_t>(i)]);
      byteSendDispls[static_cast<std::size_t>(i)] = pos;
      pos += byteSend[static_cast<std::size_t>(i)];
    }
    outbound.resize(static_cast<std::size_t>(pos));
    for (int i = 0; i < p; ++i) {
      util::copyBytes(outbound.data() + byteSendDispls[static_cast<std::size_t>(i)],
                      service[static_cast<std::size_t>(i)].data(),
                      srcBytes[static_cast<std::size_t>(i)]);
    }
    std::uint64_t off = 0;
    for (int d = 0; d < a; ++d) {
      const int src = aggregators_[static_cast<std::size_t>(d)];
      byteRecv[static_cast<std::size_t>(src)] = static_cast<int>(bytesPerDomain[static_cast<std::size_t>(d)]);
      byteRecvDispls[static_cast<std::size_t>(src)] = static_cast<int>(off);
      off += bytesPerDomain[static_cast<std::size_t>(d)];
    }
    comm.alltoallv(outbound.data(), byteSend.data(), byteSendDispls.data(), payload, byteRecv.data(),
                   byteRecvDispls.data(), mpi::Datatype::byte());
  }
}

}  // namespace mvio::io
