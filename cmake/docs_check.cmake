# Documentation reference check, run as a ctest (`docs_check`).
#
# Scans the backtick-quoted file references in README.md and DESIGN.md
# and fails if any referenced file no longer exists in the tree — the
# docs rot the moment a refactor renames a file, and this keeps that
# honest. A reference is accepted when it resolves relative to the repo
# root or to src/, or (for bare file names like `exchange.cpp`) when a
# file of that name exists anywhere under src/, tests/, bench/,
# examples/ or cmake/.
#
# Usage: cmake -DREPO_ROOT=<repo> -P cmake/docs_check.cmake

cmake_minimum_required(VERSION 3.20)  # script mode: pin policies (IN_LIST, JOIN)

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "docs_check: pass -DREPO_ROOT=<repository root>")
endif()

file(GLOB_RECURSE KNOWN_FILES RELATIVE ${REPO_ROOT}
     ${REPO_ROOT}/src/* ${REPO_ROOT}/tests/* ${REPO_ROOT}/bench/*
     ${REPO_ROOT}/examples/* ${REPO_ROOT}/cmake/*)
set(KNOWN_BASENAMES "")
foreach(f ${KNOWN_FILES})
  get_filename_component(base ${f} NAME)
  list(APPEND KNOWN_BASENAMES ${base})
endforeach()

set(MISSING "")
foreach(doc README.md DESIGN.md)
  set(doc_path ${REPO_ROOT}/${doc})
  if(NOT EXISTS ${doc_path})
    list(APPEND MISSING "${doc} (the document itself)")
    continue()
  endif()
  file(READ ${doc_path} text)
  # `path.ext` tokens; the brace expansion form `file.{hpp,cpp}` expands.
  string(REGEX MATCHALL "`[A-Za-z0-9_/.{,}-]+\\.(hpp|cpp|md|txt|cmake)`" refs "${text}")
  string(REGEX MATCHALL "`[A-Za-z0-9_/.-]+\\.{hpp,cpp}`" brace_refs "${text}")
  list(APPEND refs ${brace_refs})
  foreach(ref ${refs})
    string(REPLACE "`" "" ref ${ref})
    set(expanded ${ref})
    if(ref MATCHES "^(.*)\\.\\{hpp,cpp\\}$")
      set(expanded ${CMAKE_MATCH_1}.hpp ${CMAKE_MATCH_1}.cpp)
    elseif(ref MATCHES "[{,}]")
      continue()  # other brace forms: skip rather than misparse
    endif()
    foreach(path ${expanded})
      get_filename_component(base ${path} NAME)
      if(EXISTS ${REPO_ROOT}/${path} OR EXISTS ${REPO_ROOT}/src/${path})
        continue()
      endif()
      if(NOT path MATCHES "/" AND base IN_LIST KNOWN_BASENAMES)
        continue()
      endif()
      list(APPEND MISSING "${doc}: ${path}")
    endforeach()
  endforeach()
endforeach()

if(MISSING)
  list(JOIN MISSING "\n  " msg)
  message(FATAL_ERROR "stale documentation references:\n  ${msg}")
endif()
message(STATUS "docs_check: all README.md/DESIGN.md file references resolve")
