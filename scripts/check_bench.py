#!/usr/bin/env python3
"""Validate and gate the observability artifacts (DESIGN.md 14).

Subcommands:
  validate-report REPORT.json        schema-check a mvio.run_report document
  validate-trace  TRACE.json         check a Chrome/Perfetto trace-event file:
                                     well-formed, balanced B/E per lane,
                                     timestamps nondecreasing per lane
  make-baseline   REPORT.json -o B   derive a gating baseline from a report
                                     (tolerances assigned by key policy)
  compare         REPORT.json BASELINE.json
                                     fail (exit 1) when a gated value drifts
                                     beyond its tolerance

Baselines are committed under bench/baselines/ and are plain JSON - edit a
"rel_tol"/"abs_tol" by hand to loosen a gate, or set "gate": false to make
a value informational.
"""

import argparse
import json
import math
import re
import sys

REPORT_SCHEMA = "mvio.run_report"
BASELINE_SCHEMA = "mvio.bench_baseline"

PHASE_TIME_KEYS = [
    "read", "parse", "partition", "comm", "compute", "spill", "migrate",
    "checkpoint", "recovery", "compaction", "overlapped", "workerCpu",
    "workerCritical", "total",
]
PHASE_COUNT_KEYS = [
    "rounds", "refineSpillBytes", "migrateBytes", "migrateRounds",
    "checkpointBytes", "checkpointEpochs", "recoveryBytes", "recoveryRounds",
    "compactionBytes", "reclaimedBytes",
]

# Tolerance policy for make-baseline, first match wins. None -> not gated
# (tracked informationally). Deterministic outputs (join pairs, owned
# record counts, iteration counts, payload-copy bytes) gate exactly;
# modelled read times gate only against gross (>2x) regressions because
# measured CPU perturbs the queue model's arrival times; anything priced
# purely from measured CPU stays informational.
VALUE_POLICY = [
    (re.compile(r"^(pairs|owned_|iters_|rounds)"), (0.0, 0.0)),
    (re.compile(r"^read_seconds_"), (1.0, 0.01)),
    (re.compile(r"^bytes_copied_"), (0.0, 0.0)),
    (re.compile(r"^alloc_count_"), (0.5, 64.0)),
    (re.compile(r"seconds"), None),
]
PHASE_POLICY = [
    (re.compile(r"^rounds$"), (0.0, 0.0)),
    (re.compile(r"Bytes$|Epochs$|Rounds$"), (0.25, 1024.0)),
]


def fail(msg):
    print("check_bench: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail("%s: %s" % (path, e))


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


# ---- validate-report ------------------------------------------------------

def check_report(doc, path):
    if doc.get("schema") != REPORT_SCHEMA:
        fail("%s: schema is %r, want %r" % (path, doc.get("schema"), REPORT_SCHEMA))
    if doc.get("version") != 1:
        fail("%s: unsupported report version %r" % (path, doc.get("version")))
    for key in ("name", "setup"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            fail("%s: missing %r" % (path, key))
    phases = doc.get("phases")
    if not isinstance(phases, dict):
        fail("%s: 'phases' must be an object" % path)
    if phases:  # benches without a framework run emit an empty object
        for key in PHASE_TIME_KEYS + PHASE_COUNT_KEYS:
            if key not in phases:
                fail("%s: phases missing %r" % (path, key))
            if not is_num(phases[key]) or phases[key] < 0:
                fail("%s: phases[%r] = %r is not a finite non-negative number"
                     % (path, key, phases[key]))
    values = doc.get("values")
    if not isinstance(values, dict):
        fail("%s: 'values' must be an object" % path)
    for key, v in values.items():
        if not is_num(v):
            fail("%s: values[%r] = %r is not a finite number" % (path, key, v))
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail("%s: 'metrics' must be an array" % path)
    for m in metrics:
        for key in ("name", "kind", "count", "min", "max", "sum", "mean", "p50", "p99"):
            if key not in m:
                fail("%s: metric %r missing %r" % (path, m.get("name"), key))
        if m["kind"] not in ("c", "g", "h"):
            fail("%s: metric %r has kind %r" % (path, m["name"], m["kind"]))
        if m["min"] > m["max"] + 1e-12:
            fail("%s: metric %r has min > max" % (path, m["name"]))
    return doc


def cmd_validate_report(args):
    doc = check_report(load(args.report), args.report)
    print("check_bench: OK: %s (%d values, %d metrics)"
          % (args.report, len(doc["values"]), len(doc["metrics"])))


# ---- validate-trace -------------------------------------------------------

def cmd_validate_trace(args):
    doc = load(args.trace)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("%s: 'traceEvents' must be an array" % args.trace)
    lanes = {}      # (pid, tid) -> last ts
    depth = {}      # (pid, tid) -> open span stack
    spans = 0
    instants = 0
    procs = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph not in ("B", "E", "i"):
            fail("%s: event %d has unsupported ph %r" % (args.trace, i, ph))
        key = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if not is_num(ts):
            fail("%s: event %d has non-numeric ts" % (args.trace, i))
        procs.add(ev.get("pid"))
        if key in lanes and ts < lanes[key] - 1e-9:
            fail("%s: event %d (%r) steps back in time on lane %r: %r < %r"
                 % (args.trace, i, ev.get("name"), key, ts, lanes[key]))
        lanes[key] = ts
        stack = depth.setdefault(key, [])
        if ph == "B":
            stack.append(ev.get("name"))
            spans += 1
        elif ph == "E":
            if not stack:
                fail("%s: event %d ends a span that never began on lane %r"
                     % (args.trace, i, key))
            stack.pop()
        else:
            instants += 1
    open_spans = [(k, s) for k, s in depth.items() if s]
    if open_spans:
        fail("%s: unbalanced spans left open: %r" % (args.trace, open_spans[:4]))
    if args.min_spans and spans < args.min_spans:
        fail("%s: only %d spans, expected at least %d" % (args.trace, spans, args.min_spans))
    if args.expect_phases:
        names = {ev.get("name") for ev in events if ev.get("ph") == "B"}
        missing = [p for p in args.expect_phases.split(",") if p not in names]
        if missing:
            fail("%s: no span for phase(s): %s" % (args.trace, ",".join(missing)))
    print("check_bench: OK: %s (%d ranks, %d lanes, %d spans, %d instants)"
          % (args.trace, len(procs), len(lanes), spans, instants))


# ---- make-baseline / compare ----------------------------------------------

def policy_tolerance(policies, key):
    for pattern, tol in policies:
        if pattern.search(key):
            return tol
    return None


def cmd_make_baseline(args):
    report = check_report(load(args.report), args.report)
    baseline = {
        "schema": BASELINE_SCHEMA,
        "version": 1,
        "name": report["name"],
        "values": {},
        "phases": {},
    }
    for key, v in sorted(report["values"].items()):
        tol = policy_tolerance(VALUE_POLICY, key)
        entry = {"expect": v, "gate": tol is not None}
        if tol is not None:
            entry["rel_tol"], entry["abs_tol"] = tol
        baseline["values"][key] = entry
    for key, v in sorted(report.get("phases", {}).items()):
        tol = policy_tolerance(PHASE_POLICY, key)
        entry = {"expect": v, "gate": tol is not None}
        if tol is not None:
            entry["rel_tol"], entry["abs_tol"] = tol
        baseline["phases"][key] = entry
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    gated = sum(1 for s in ("values", "phases")
                for e in baseline[s].values() if e["gate"])
    print("check_bench: wrote %s (%d gated entries)" % (args.output, gated))


def compare_section(section, actual, expected, failures):
    for key, entry in expected.items():
        if key not in actual:
            failures.append("%s.%s: missing from report" % (section, key))
            continue
        if not entry.get("gate", False):
            continue
        want = entry["expect"]
        got = actual[key]
        tol = max(entry.get("abs_tol", 0.0), entry.get("rel_tol", 0.0) * abs(want))
        if abs(got - want) > tol:
            failures.append("%s.%s: %r drifted from %r (tolerance %r)"
                            % (section, key, got, want, tol))


def cmd_compare(args):
    report = check_report(load(args.report), args.report)
    baseline = load(args.baseline)
    if baseline.get("schema") != BASELINE_SCHEMA:
        fail("%s: schema is %r, want %r"
             % (args.baseline, baseline.get("schema"), BASELINE_SCHEMA))
    if baseline.get("name") != report["name"]:
        fail("report is %r but baseline is for %r" % (report["name"], baseline.get("name")))
    failures = []
    compare_section("values", report["values"], baseline.get("values", {}), failures)
    compare_section("phases", report.get("phases", {}), baseline.get("phases", {}), failures)
    if failures:
        for f in failures:
            print("check_bench: REGRESSION: %s" % f, file=sys.stderr)
        sys.exit(1)
    gated = sum(1 for s in ("values", "phases")
                for e in baseline.get(s, {}).values() if e.get("gate", False))
    print("check_bench: OK: %s within %s (%d gated entries)"
          % (args.report, args.baseline, gated))


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("validate-report")
    p.add_argument("report")
    p.set_defaults(func=cmd_validate_report)

    p = sub.add_parser("validate-trace")
    p.add_argument("trace")
    p.add_argument("--min-spans", type=int, default=0)
    p.add_argument("--expect-phases", default="",
                   help="comma-separated span names that must appear")
    p.set_defaults(func=cmd_validate_trace)

    p = sub.add_parser("make-baseline")
    p.add_argument("report")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_make_baseline)

    p = sub.add_parser("compare")
    p.add_argument("report")
    p.add_argument("baseline")
    p.set_defaults(func=cmd_compare)

    args = ap.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
