#!/usr/bin/env bash
# Tier-1 CI: configure, build, and run the full ctest suite under both
# presets — the default RelWithDebInfo build and the ASan+UBSan build
# (CMakePresets.json; the sanitizer preset compiles with
# -fsanitize=address,undefined -fno-sanitize-recover=all, so any memory
# or UB defect fails the run).
#
# Usage: scripts/ci.sh [preset...]   (default: "default asan")
# Useful subsets once built: ctest -L recovery / -L mpi / -L unit.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("${@:-default}" )
if [[ $# -eq 0 ]]; then presets=(default asan); fi

for preset in "${presets[@]}"; do
  echo "==> preset: ${preset}"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}"
done
echo "==> tier-1 green under: ${presets[*]}"
