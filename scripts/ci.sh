#!/usr/bin/env bash
# Tier-1 CI: configure, build, and run the ctest suite under three
# presets — the default RelWithDebInfo build, the ASan+UBSan build, and
# the TSan build (CMakePresets.json). The sanitizer presets compile with
# -fno-sanitize-recover=all, so any memory/UB/data-race defect fails the
# run; the tsan preset's test filter is the `threads` label — the
# worker-pool and hybrid-pipeline coverage that actually runs multiple
# threads per rank.
#
# After the preset loop a bounded soak lane re-runs the `soak`-labeled
# tests (randomized fault schedules, tests/test_fault_soak.cpp) with a
# wider draw than the in-suite default — MVIO_SOAK_SCHEDULES/MVIO_SOAK_SEED
# override the width and the generator seed. The asan preset runs the
# unit-labeled durable-codec fuzz tests (tests/test_codec_fuzz.cpp) as
# part of its full suite — including the WKB ingest record-stream lane
# (exhaustive single-bit flips + truncations over the framed stream).
# The bench-smoke label covers bench_ingest_formats, which hard-fails
# if the binary fast path loses its >= 2x parse-CPU edge over WKT, and
# bench_partition, which hard-fails if the adaptive cell maps stop
# cutting the max-rank load / migration bytes on skewed input, if any
# scheme changes the join result, or if the pilot cost model's predicted
# winner drifts from the measured one outside its noise band.
#
# Usage: scripts/ci.sh [preset...]   (default: "default asan tsan")
# Useful subsets once built: ctest -L recovery / -L mpi / -L threads / -L soak.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("${@:-default}" )
if [[ $# -eq 0 ]]; then presets=(default asan tsan); fi

for preset in "${presets[@]}"; do
  echo "==> preset: ${preset}"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}"
done

for preset in "${presets[@]}"; do
  if [[ "${preset}" == "default" ]]; then
    echo "==> soak lane: randomized fault schedules (preset: default)"
    MVIO_SOAK_SCHEDULES="${MVIO_SOAK_SCHEDULES:-16}" \
      ctest --preset default -L soak --output-on-failure
  fi
done
echo "==> tier-1 green under: ${presets[*]}"
