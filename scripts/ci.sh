#!/usr/bin/env bash
# Tier-1 CI: configure, build, and run the ctest suite under three
# presets — the default RelWithDebInfo build, the ASan+UBSan build, and
# the TSan build (CMakePresets.json). The sanitizer presets compile with
# -fno-sanitize-recover=all, so any memory/UB/data-race defect fails the
# run; the tsan preset's test filter is the `threads` label — the
# worker-pool and hybrid-pipeline coverage that actually runs multiple
# threads per rank.
#
# After the preset loop a bounded soak lane re-runs the `soak`-labeled
# tests (randomized fault schedules, tests/test_fault_soak.cpp) with a
# wider draw than the in-suite default — MVIO_SOAK_SCHEDULES/MVIO_SOAK_SEED
# override the width and the generator seed. The asan preset runs the
# unit-labeled durable-codec fuzz tests (tests/test_codec_fuzz.cpp) as
# part of its full suite — including the WKB ingest record-stream lane
# (exhaustive single-bit flips + truncations over the framed stream).
# The bench-smoke label covers bench_ingest_formats, which hard-fails
# if the binary fast path loses its >= 2x parse-CPU edge over WKT, and
# bench_partition, which hard-fails if the adaptive cell maps stop
# cutting the max-rank load / migration bytes on skewed input, if any
# scheme changes the join result, or if the pilot cost model's predicted
# winner drifts from the measured one outside its noise band.
#
# The default preset also runs the obs lane (DESIGN.md §14): bench_overlap
# and bench_fig08_l0_allobjects re-run with the flight recorder on
# (MVIO_TRACE_OUT/MVIO_REPORT_OUT), scripts/check_bench.py validates the
# Perfetto trace and run-report JSON, and the perf-regression comparator
# gates the reports against the committed bench/baselines/*.json.
#
# Usage: scripts/ci.sh [preset...]   (default: "default asan tsan")
# Useful subsets once built: ctest -L recovery / -L mpi / -L threads /
# -L soak / -L obs.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("${@:-default}" )
if [[ $# -eq 0 ]]; then presets=(default asan tsan); fi

for preset in "${presets[@]}"; do
  echo "==> preset: ${preset}"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}"
done

for preset in "${presets[@]}"; do
  if [[ "${preset}" == "default" ]]; then
    echo "==> soak lane: randomized fault schedules (preset: default)"
    MVIO_SOAK_SCHEDULES="${MVIO_SOAK_SCHEDULES:-16}" \
      ctest --preset default -L soak --output-on-failure

    echo "==> obs lane: flight-recorder traces, run reports, perf gate (preset: default)"
    obs_dir="$(mktemp -d)"
    trap 'rm -rf "${obs_dir}"' EXIT
    MVIO_TRACE_OUT="${obs_dir}/trace_overlap.json" \
      MVIO_REPORT_OUT="${obs_dir}/BENCH_overlap.json" \
      ./build/bench_overlap > "${obs_dir}/overlap.log"
    MVIO_TRACE_OUT="${obs_dir}/trace_fig08.json" \
      MVIO_REPORT_OUT="${obs_dir}/BENCH_fig08.json" \
      ./build/bench_fig08_l0_allobjects > "${obs_dir}/fig08.log"
    # bench_overlap's instrumented row streams with threads + overlap but
    # no memory pressure, so every framework phase except spill appears;
    # fig08's addendum traces its read → parse → partition → comm cascade.
    python3 scripts/check_bench.py validate-trace "${obs_dir}/trace_overlap.json" \
      --min-spans 100 --expect-phases read,parse,partition,comm,compute,round
    python3 scripts/check_bench.py validate-trace "${obs_dir}/trace_fig08.json" \
      --min-spans 64 --expect-phases read,parse,partition,comm
    python3 scripts/check_bench.py validate-report "${obs_dir}/BENCH_overlap.json"
    python3 scripts/check_bench.py validate-report "${obs_dir}/BENCH_fig08.json"
    python3 scripts/check_bench.py compare "${obs_dir}/BENCH_overlap.json" bench/baselines/overlap.json
    python3 scripts/check_bench.py compare "${obs_dir}/BENCH_fig08.json" bench/baselines/fig08.json
  fi
done
echo "==> tier-1 green under: ${presets[*]}"
